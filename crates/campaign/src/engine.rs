//! The campaign executor: a sharded worker pool with a deterministic
//! index-order merge and manifest-based resume.
//!
//! Workers claim *chunks* of contiguous scenario indices from a shared
//! atomic cursor (chunk size derived from the matrix length and the
//! worker count), so the claim cost amortises over many scenarios while
//! load still balances across uneven scenario costs. Each worker owns a
//! private result buffer (no shared lock on the hot path) and — through
//! [`run_with`] — a private mutable *worker state* it reuses across
//! scenarios, so simulators and scratch buffers are built once per
//! worker instead of once per scenario. Only the runner's captured
//! read-only inputs — typically an `Arc<CharacterizationDb>` — are
//! shared. Results are merged strictly in scenario-index order, so the
//! merged output is byte-identical for any worker count, chunk size or
//! completion interleaving.

use crate::manifest::{Manifest, ManifestEntry, RunRecord, WorkerRecord};
use crate::matrix::{Matrix, ScenarioPoint};
use crate::Json;
use hierbus_obs::profiling::{PoolPhase, PoolProfile, Profiler};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A campaign result type: anything that can round-trip through the
/// manifest's JSON payload.
pub trait CampaignPayload: Sized + Send {
    /// Serializes the result for the manifest.
    fn to_json(&self) -> Json;
    /// Reconstructs a result from a manifest payload; `None` marks the
    /// payload stale (the scenario re-runs instead of resuming).
    fn from_json(json: &Json) -> Option<Self>;
}

/// How workers claim scenarios from the shared work list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClaimStrategy {
    /// Claim contiguous chunks sized from `todo / (workers × 4)` — one
    /// atomic op per chunk, keeping claim overhead off the per-scenario
    /// path while the ×4 oversubscription still balances uneven
    /// scenario costs.
    #[default]
    Chunked,
    /// Claim one scenario per atomic op — the engine's original
    /// policy, kept as the benchmark comparator (and for differential
    /// tests: both strategies must merge byte-identically).
    PerScenario,
}

impl ClaimStrategy {
    /// The chunk size this strategy claims for `todo` pending scenarios
    /// on `workers` threads (always ≥ 1).
    pub fn chunk_size(self, todo: usize, workers: usize) -> usize {
        match self {
            ClaimStrategy::PerScenario => 1,
            ClaimStrategy::Chunked => (todo / (workers * 4)).max(1),
        }
    }
}

/// How a campaign executes.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Campaign name, recorded in the manifest.
    pub name: String,
    /// Worker threads (clamped to at least 1). One worker reproduces
    /// the classic sequential loop exactly.
    pub workers: usize,
    /// Manifest to resume from / checkpoint to; `None` disables
    /// resume.
    pub manifest_path: Option<PathBuf>,
    /// Process only the first `limit` scenarios of the matrix —
    /// simulates an interrupted campaign and powers CI smoke runs.
    pub limit: Option<usize>,
    /// Work-claiming policy; [`ClaimStrategy::Chunked`] unless a
    /// benchmark explicitly asks for the legacy comparator.
    pub claim: ClaimStrategy,
    /// Record per-worker phase timelines and contention counters into
    /// [`CampaignReport::profile`]. Off by default: a disabled profiler
    /// reduces every probe to one branch (no clock reads, no
    /// allocation), and profiling never changes the merged results or
    /// the manifest's scenario entries either way.
    pub profile: bool,
    /// Opaque trace id stamped on every [`SinkScope`] this run hands to
    /// its sink — the serve daemon threads its per-request trace id
    /// through here so worker-side events correlate with the request.
    /// Never enters the manifest or the merged results.
    pub trace_id: Option<String>,
    /// Time origin for [`SinkScope::started_us`] /
    /// [`SinkScope::finished_us`]. A caller stitching worker spans into
    /// a larger trace (the serve daemon's per-request Perfetto track)
    /// passes its own epoch so every span shares one µs axis; `None`
    /// uses the campaign's own start instant.
    pub epoch: Option<Instant>,
}

impl CampaignOptions {
    /// Sequential, manifest-less execution — the drop-in replacement
    /// for a plain `for` loop over the matrix.
    pub fn sequential(name: &str) -> Self {
        CampaignOptions {
            name: name.to_owned(),
            workers: 1,
            manifest_path: None,
            limit: None,
            claim: ClaimStrategy::default(),
            profile: false,
            trace_id: None,
            epoch: None,
        }
    }

    /// Like [`sequential`](Self::sequential) with `workers` threads.
    pub fn with_workers(name: &str, workers: usize) -> Self {
        CampaignOptions {
            workers,
            ..CampaignOptions::sequential(name)
        }
    }
}

/// Per-worker execution diagnostics. Claim counts and busy time depend
/// on scheduling, so these describe *this run* — they are surfaced in
/// run reports and in the manifest's optional `last_run` diagnostics
/// section, and never enter the scenario entries or the merged
/// results, which stay byte-identical at any worker count.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Scenarios this worker claimed from the shared cursor.
    pub claimed: u64,
    /// Scenarios it finished (equals `claimed` after a clean run).
    pub completed: u64,
    /// Time spent executing scenarios (measured per claimed chunk).
    pub busy: Duration,
    /// Failed compare-exchange attempts while claiming from the shared
    /// cursor — the raw claim-contention signal.
    pub claim_retries: u64,
}

impl WorkerStats {
    /// Fraction of the campaign's wall clock this worker spent running
    /// scenarios — near 1.0 across the pool on a balanced campaign,
    /// sagging when chunks are uneven or workers starve.
    pub fn utilization(&self, wall: Duration) -> f64 {
        let w = wall.as_secs_f64();
        if w > 0.0 {
            self.busy.as_secs_f64() / w
        } else {
            0.0
        }
    }
}

/// What a campaign run did (wall-clock lives here and in the
/// manifest's `last_run` diagnostics section, never in the scenario
/// entries or the merged results).
#[derive(Debug, Clone)]
pub struct CampaignStats {
    /// Scenarios in the matrix.
    pub total: usize,
    /// Scenarios executed by this run.
    pub executed: usize,
    /// Scenarios skipped because the manifest already had their
    /// results.
    pub resumed: usize,
    /// Scenarios left untouched (beyond [`CampaignOptions::limit`]).
    pub pending: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock time of the execution phase.
    pub wall: Duration,
    /// Per-worker claim/completion/utilization diagnostics, in worker
    /// spawn order (one entry per worker thread).
    pub per_worker: Vec<WorkerStats>,
}

impl CampaignStats {
    /// Executed scenarios per second (0 when nothing ran).
    pub fn scenarios_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.executed as f64 / secs
        } else {
            0.0
        }
    }
}

/// The merged outcome of a campaign run.
#[derive(Debug)]
pub struct CampaignReport<R> {
    /// Scenario points in matrix order.
    pub points: Vec<ScenarioPoint>,
    /// Per-scenario results, parallel to `points`; `None` only for
    /// scenarios beyond the limit.
    pub results: Vec<Option<R>>,
    /// Execution statistics.
    pub stats: CampaignStats,
    /// Per-worker phase timelines and contention counters; `Some` iff
    /// [`CampaignOptions::profile`] was set. Wall-clock based, so it is
    /// diagnostics only — never merged into `results`.
    pub profile: Option<PoolProfile>,
}

impl<R> CampaignReport<R> {
    /// Completed `(point, result)` pairs in scenario-index order.
    pub fn completed(&self) -> impl Iterator<Item = (&ScenarioPoint, &R)> {
        self.points
            .iter()
            .zip(&self.results)
            .filter_map(|(p, r)| r.as_ref().map(|r| (p, r)))
    }

    /// True once every scenario of the matrix has a result.
    pub fn is_complete(&self) -> bool {
        self.results.iter().all(Option::is_some)
    }
}

/// Runs `runner` over every scenario of `matrix` according to `opts`.
///
/// The runner maps a scenario point to its result; it must be pure in
/// the point (campaign determinism is *its* determinism fanned out).
/// Results merge in scenario-index order; if a manifest path is set,
/// completed results load from it before execution and the union is
/// checkpointed back after.
///
/// # Errors
///
/// I/O errors from manifest loading or saving. A manifest written for
/// a *different* matrix is ignored (the campaign starts fresh), not an
/// error.
///
/// # Panics
///
/// A runner panic on any worker propagates (after the other workers
/// finish their current scenario).
pub fn run<R, F>(
    matrix: &Matrix,
    opts: &CampaignOptions,
    runner: F,
) -> io::Result<CampaignReport<R>>
where
    R: CampaignPayload,
    F: Fn(&ScenarioPoint) -> R + Sync,
{
    run_with(matrix, opts, || (), |(), point| runner(point))
}

/// Like [`run`], with per-worker mutable state: `make_state` builds one
/// `S` per worker thread, and the runner receives it exclusively for
/// every scenario that worker claims — the hook for reusing simulators
/// and scratch buffers across scenarios (via a `reset()` path) instead
/// of rebuilding them per scenario.
///
/// Determinism contract: the runner must produce the same result for a
/// point whether its state is fresh or reused — reset-reuse must be
/// observationally identical to rebuilding. Under that contract the
/// merged output stays byte-identical for any worker count and claim
/// strategy, exactly as for [`run`].
///
/// # Errors
///
/// I/O errors from manifest loading or saving, as for [`run`].
///
/// # Panics
///
/// A runner (or `make_state`) panic on any worker propagates after the
/// other workers finish their current chunk.
/// Execution context handed to a [`run_with_sink`] sink with each
/// result: which point finished, on which worker, when (µs since
/// [`CampaignOptions::epoch`] or the campaign start), and under which
/// [`CampaignOptions::trace_id`]. Everything here is diagnostic — none
/// of it enters the manifest or the merged results.
#[derive(Debug, Clone, Copy)]
pub struct SinkScope<'a> {
    /// The scenario point that just completed.
    pub point: &'a ScenarioPoint,
    /// Index of the worker thread that ran it (`0..workers`).
    pub worker: usize,
    /// The run's [`CampaignOptions::trace_id`], if any.
    pub trace_id: Option<&'a str>,
    /// When the runner started on this point, µs since the epoch.
    pub started_us: u64,
    /// When the runner finished, µs since the epoch.
    pub finished_us: u64,
}

pub fn run_with<S, R, F, I>(
    matrix: &Matrix,
    opts: &CampaignOptions,
    make_state: I,
    runner: F,
) -> io::Result<CampaignReport<R>>
where
    R: CampaignPayload + Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &ScenarioPoint) -> R + Sync,
{
    run_with_sink(matrix, opts, make_state, runner, |_, _| {})
}

/// Like [`run_with`], streaming each result to `sink` the moment its
/// scenario completes — before the index-order merge, on the worker
/// thread that produced it. This is the serve daemon's hook for
/// pushing results to a client incrementally instead of waiting for
/// the whole campaign.
///
/// The sink observes results in *completion* order, which depends on
/// scheduling; anything that must be deterministic should come from
/// the merged [`CampaignReport`], not the sink. The sink runs inside
/// the worker's busy window, so a slow sink shows up as worker busy
/// time. Resumed scenarios (adopted from a manifest) never reach the
/// sink — only freshly executed ones do.
///
/// # Errors
///
/// I/O errors from manifest loading or saving, as for [`run`].
///
/// # Panics
///
/// A runner, `make_state`, or sink panic on any worker propagates
/// after the other workers finish their current chunk.
pub fn run_with_sink<S, R, F, I, K>(
    matrix: &Matrix,
    opts: &CampaignOptions,
    make_state: I,
    runner: F,
    sink: K,
) -> io::Result<CampaignReport<R>>
where
    R: CampaignPayload + Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &ScenarioPoint) -> R + Sync,
    K: Fn(&SinkScope, &R) + Sync,
{
    let points = matrix.points();
    let total = points.len();
    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();

    // Resume: adopt every manifest entry whose key still matches the
    // matrix point and whose payload still parses.
    let mut resumed = 0;
    if let Some(path) = &opts.manifest_path {
        if let Some(manifest) = Manifest::load(path)? {
            if manifest.matches(matrix) {
                for entry in &manifest.entries {
                    if entry.index < total && points[entry.index].key == entry.key {
                        if let Some(r) = R::from_json(&entry.result) {
                            results[entry.index] = Some(r);
                            resumed += 1;
                        }
                    }
                }
            }
        }
    }

    let limit = opts.limit.unwrap_or(total).min(total);
    let todo: Vec<usize> = (0..limit).filter(|&i| results[i].is_none()).collect();
    let workers = opts.workers.max(1).min(todo.len().max(1));
    let chunk = opts.claim.chunk_size(todo.len(), workers);

    let profiler = Profiler::new(opts.profile);
    let started = Instant::now();
    let epoch = opts.epoch.unwrap_or(started);
    let trace_id = opts.trace_id.as_deref();
    let cursor = AtomicUsize::new(0);
    // Per-worker result buffers: no shared lock between claim points.
    // Each worker builds its state once and reuses it chunk after chunk.
    let mut executed_results: Vec<(usize, R)> = Vec::with_capacity(todo.len());
    let mut per_worker: Vec<WorkerStats> = Vec::with_capacity(workers);
    let mut timelines = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let (cursor, todo, points) = (&cursor, &todo[..], &points[..]);
                let (make_state, runner, sink) = (&make_state, &runner, &sink);
                scope.spawn(move || {
                    // The profile recorder lives on the worker's own
                    // thread so the thread-local contention baselines
                    // (allocations, db accesses) are this thread's.
                    let mut wp = profiler.worker(worker);
                    let t = wp.now_ns();
                    let mut state = make_state();
                    wp.record(PoolPhase::DbAccess, t, 0);
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    let mut wstats = WorkerStats::default();
                    loop {
                        let t_claim = wp.now_ns();
                        let (lo, retries) = claim_chunk(cursor, chunk, todo.len());
                        wstats.claim_retries += retries;
                        wp.add_claim_retries(retries);
                        if lo >= todo.len() {
                            break;
                        }
                        let hi = (lo + chunk).min(todo.len());
                        wp.record(PoolPhase::Claim, t_claim, (hi - lo) as u64);
                        wstats.claimed += (hi - lo) as u64;
                        mine.reserve(hi - lo);
                        let chunk_started = Instant::now();
                        let t_chunk = wp.now_ns();
                        for &index in &todo[lo..hi] {
                            let t = wp.now_ns();
                            let started_us = epoch.elapsed().as_micros() as u64;
                            let result = runner(&mut state, &points[index]);
                            let finished_us = epoch.elapsed().as_micros() as u64;
                            wp.record(PoolPhase::Simulate, t, index as u64);
                            let t = wp.now_ns();
                            sink(
                                &SinkScope {
                                    point: &points[index],
                                    worker,
                                    trace_id,
                                    started_us,
                                    finished_us,
                                },
                                &result,
                            );
                            mine.push((index, result));
                            wp.record(PoolPhase::Serialize, t, index as u64);
                            wstats.completed += 1;
                        }
                        wstats.busy += chunk_started.elapsed();
                        wp.chunk_done(t_chunk);
                    }
                    (mine, wstats, wp.finish())
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((mine, wstats, timeline)) => {
                    executed_results.extend(mine);
                    per_worker.push(wstats);
                    timelines.push(timeline);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let wall = started.elapsed();

    // Deterministic merge: completion interleaving is erased by
    // slotting each result back at its scenario index. Timed (with the
    // manifest checkpoint) as the profile's serial merge segment.
    let merge_started = Instant::now();
    let executed = executed_results.len();
    for (index, result) in executed_results {
        results[index] = Some(result);
    }

    if let Some(path) = &opts.manifest_path {
        let mut manifest = Manifest::new(&opts.name, matrix);
        manifest.entries = points
            .iter()
            .zip(&results)
            .filter_map(|(p, r)| {
                r.as_ref().map(|r| ManifestEntry {
                    index: p.index,
                    key: p.key.clone(),
                    result: r.to_json(),
                })
            })
            .collect();
        manifest.last_run = Some(RunRecord {
            workers,
            wall_ns: wall.as_nanos() as u64,
            per_worker: per_worker
                .iter()
                .map(|w| WorkerRecord {
                    claimed: w.claimed,
                    completed: w.completed,
                    busy_ns: w.busy.as_nanos() as u64,
                    utilization: w.utilization(wall),
                    claim_retries: w.claim_retries,
                })
                .collect(),
        });
        manifest.save(path, matrix)?;
    }

    let profile = profiler.assemble(
        timelines,
        wall.as_nanos() as u64,
        merge_started.elapsed().as_nanos() as u64,
    );

    let pending = results.iter().filter(|r| r.is_none()).count();
    Ok(CampaignReport {
        points,
        results,
        stats: CampaignStats {
            total,
            executed,
            resumed,
            pending,
            workers,
            wall,
            per_worker,
        },
        profile,
    })
}

/// Claims `[lo, lo+chunk)` (clamped to `len`) from the shared cursor
/// with a bounded compare-exchange loop, returning the claimed `lo`
/// (`len` when the work list is exhausted) and the number of failed
/// exchange attempts — the per-claim contention sample the profiler
/// aggregates. Unlike a blind `fetch_add`, the cursor never runs past
/// `len`.
fn claim_chunk(cursor: &AtomicUsize, chunk: usize, len: usize) -> (usize, u64) {
    let mut retries = 0u64;
    let mut lo = cursor.load(Ordering::Relaxed);
    loop {
        if lo >= len {
            return (len, retries);
        }
        let hi = (lo + chunk).min(len);
        match cursor.compare_exchange_weak(lo, hi, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return (lo, retries),
            Err(current) => {
                retries += 1;
                lo = current;
            }
        }
    }
}

/// One worker-count measurement of [`measure_scaling`].
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub workers: usize,
    pub wall: Duration,
    pub scenarios_per_sec: f64,
    /// Fraction of the pool's worker-seconds (`workers × wall`) spent
    /// executing scenarios — 1.0 means no worker ever waited.
    pub busy_frac: f64,
    /// Busy/wall fraction of the pool restricted to *active* workers:
    /// Σ busy over workers that completed at least one scenario,
    /// divided by `wall × active` (1.0 = no active worker ever
    /// waited). Workers that claimed nothing — routine when the matrix
    /// is smaller than `workers × chunk` — are counted in
    /// [`idle_workers`](Self::idle_workers) instead of diluting this.
    /// Deliberately a mean, not a min: one worker that draws a single
    /// short chunk near the end of the run is scheduling noise, and a
    /// min-over-workers rule let it collapse the whole pool's number
    /// (utilization 0.128 against a busy_frac of 0.62 at 4 workers)
    /// into a fake scaling cliff.
    pub utilization: f64,
    /// Workers that completed no scenario at all during the best run.
    pub idle_workers: usize,
    /// The best run's pool profile; `Some` iff measured through
    /// [`measure_scaling_profiled`].
    pub profile: Option<PoolProfile>,
}

impl ScalingPoint {
    fn from_report<R>(workers: usize, report: CampaignReport<R>) -> Self {
        let stats = &report.stats;
        let wall_s = stats.wall.as_secs_f64();
        let busy: f64 = stats.per_worker.iter().map(|w| w.busy.as_secs_f64()).sum();
        let cap = wall_s * stats.per_worker.len().max(1) as f64;
        let active = || stats.per_worker.iter().filter(|w| w.completed >= 1);
        ScalingPoint {
            workers,
            wall: stats.wall,
            scenarios_per_sec: stats.scenarios_per_sec(),
            busy_frac: if cap > 0.0 { busy / cap } else { 0.0 },
            utilization: {
                let n = active().count();
                if n == 0 || wall_s <= 0.0 {
                    0.0
                } else {
                    let busy_active: f64 = active().map(|w| w.busy.as_secs_f64()).sum();
                    (busy_active / (wall_s * n as f64)).clamp(0.0, 1.0)
                }
            },
            idle_workers: stats.per_worker.len() - active().count(),
            profile: report.profile,
        }
    }
}

/// How many fresh runs each worker-count measurement takes; the
/// fastest wall clock wins, like every best-of-N timer in the bench
/// crate, so transient scheduler noise cannot fake a scaling cliff.
pub const SCALING_REPS: usize = 5;

/// Runs the full campaign fresh (no manifest) [`SCALING_REPS`] times
/// per worker count and reports the best-of-N throughput trajectory —
/// the campaign-engine analog of Table 3's kT/s column.
///
/// # Panics
///
/// Propagates runner panics, like [`run`].
pub fn measure_scaling<R, F>(
    matrix: &Matrix,
    name: &str,
    worker_counts: &[usize],
    runner: F,
) -> Vec<ScalingPoint>
where
    R: CampaignPayload + Send,
    F: Fn(&ScenarioPoint) -> R + Sync,
{
    measure_scaling_with(
        matrix,
        name,
        worker_counts,
        ClaimStrategy::default(),
        || (),
        |(), point| runner(point),
    )
}

/// [`measure_scaling`] over the stateful [`run_with`] path with an
/// explicit claim strategy — the instrument behind the old-vs-new
/// engine comparison in `BENCH_throughput.json`.
///
/// # Panics
///
/// Propagates runner panics, like [`run`].
pub fn measure_scaling_with<S, R, F, I>(
    matrix: &Matrix,
    name: &str,
    worker_counts: &[usize],
    claim: ClaimStrategy,
    make_state: I,
    runner: F,
) -> Vec<ScalingPoint>
where
    R: CampaignPayload + Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &ScenarioPoint) -> R + Sync,
{
    measure_scaling_profiled(
        matrix,
        name,
        worker_counts,
        claim,
        false,
        make_state,
        runner,
    )
}

/// [`measure_scaling_with`] with the pool profiler optionally enabled:
/// each [`ScalingPoint`] then carries the *best* rep's
/// [`PoolProfile`], ready for [`scaling_audit`] — so the audit
/// decomposes the same run the throughput number came from, not an
/// average of noisy reps.
///
/// [`scaling_audit`]: hierbus_obs::profiling::scaling_audit
///
/// # Panics
///
/// Propagates runner panics, like [`run`].
pub fn measure_scaling_profiled<S, R, F, I>(
    matrix: &Matrix,
    name: &str,
    worker_counts: &[usize],
    claim: ClaimStrategy,
    profile: bool,
    make_state: I,
    runner: F,
) -> Vec<ScalingPoint>
where
    R: CampaignPayload + Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &ScenarioPoint) -> R + Sync,
{
    worker_counts
        .iter()
        .map(|&workers| {
            let opts = CampaignOptions {
                claim,
                profile,
                ..CampaignOptions::with_workers(name, workers)
            };
            let mut best: Option<ScalingPoint> = None;
            for _ in 0..SCALING_REPS.max(1) {
                let report = run_with::<S, R, _, _>(matrix, &opts, &make_state, &runner)
                    .expect("manifest-less campaign cannot fail on I/O");
                let point = ScalingPoint::from_report(workers, report);
                if best.as_ref().is_none_or(|b| point.wall < b.wall) {
                    best = Some(point);
                }
            }
            best.expect("SCALING_REPS >= 1")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy payload: deterministic function of the scenario key.
    #[derive(Debug, Clone, PartialEq)]
    struct Cell {
        key: String,
        value: u64,
    }

    impl CampaignPayload for Cell {
        fn to_json(&self) -> Json {
            Json::Obj(vec![
                ("key".to_owned(), Json::Str(self.key.clone())),
                ("value".to_owned(), Json::Num(self.value as f64)),
            ])
        }

        fn from_json(json: &Json) -> Option<Self> {
            Some(Cell {
                key: json.get("key")?.as_str()?.to_owned(),
                value: json.get("value")?.as_u64()?,
            })
        }
    }

    fn matrix() -> Matrix {
        Matrix::new()
            .axis("a", ["0", "1", "2", "3"])
            .axis("b", ["x", "y", "z"])
    }

    fn toy_runner(p: &ScenarioPoint) -> Cell {
        Cell {
            key: p.key.clone(),
            value: p.key.bytes().map(u64::from).sum::<u64>() * (p.index as u64 + 1),
        }
    }

    fn render<R: std::fmt::Debug>(report: &CampaignReport<R>) -> String {
        report
            .completed()
            .map(|(p, r)| format!("{} {:?}\n", p.key, r))
            .collect()
    }

    /// Manifest bytes with the wall-clock `last_run` diagnostics
    /// stripped — the determinism-comparison form.
    fn manifest_sans_run(path: &std::path::Path) -> String {
        let mut doc = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        doc.remove("last_run");
        doc.to_string_pretty()
    }

    #[test]
    fn worker_count_does_not_change_merged_output() {
        let m = matrix();
        let base = run(&m, &CampaignOptions::sequential("toy"), toy_runner).unwrap();
        assert!(base.is_complete());
        assert_eq!(base.stats.executed, 12);
        for workers in [2, 4, 7] {
            let par = run(
                &m,
                &CampaignOptions::with_workers("toy", workers),
                toy_runner,
            )
            .unwrap();
            assert_eq!(render(&par), render(&base), "{workers} workers");
        }
    }

    #[test]
    fn limit_leaves_tail_pending() {
        let m = matrix();
        let report = run(
            &m,
            &CampaignOptions {
                limit: Some(5),
                ..CampaignOptions::with_workers("toy", 3)
            },
            toy_runner,
        )
        .unwrap();
        assert_eq!(report.stats.executed, 5);
        assert_eq!(report.stats.pending, 7);
        assert!(report.results[..5].iter().all(Option::is_some));
        assert!(report.results[5..].iter().all(Option::is_none));
    }

    #[test]
    fn manifest_resume_skips_completed_scenarios() {
        let m = matrix();
        let dir = std::env::temp_dir().join("hierbus_campaign_engine_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("toy.manifest.json");
        let opts = |limit| CampaignOptions {
            manifest_path: Some(path.clone()),
            limit,
            ..CampaignOptions::with_workers("toy", 2)
        };

        // "Interrupted" campaign: only 4 scenarios complete.
        let partial = run(&m, &opts(Some(4)), toy_runner).unwrap();
        assert_eq!(partial.stats.executed, 4);
        assert!(!partial.is_complete());

        // Resume: the 4 come from the manifest, the other 8 execute.
        let resumed = run(&m, &opts(None), toy_runner).unwrap();
        assert_eq!(resumed.stats.resumed, 4);
        assert_eq!(resumed.stats.executed, 8);
        assert!(resumed.is_complete());

        // A fresh full run and the resumed run agree byte for byte —
        // merged output and manifest both.
        let fresh_path = dir.join("fresh.manifest.json");
        let fresh = run(
            &m,
            &CampaignOptions {
                manifest_path: Some(fresh_path.clone()),
                limit: None,
                ..CampaignOptions::sequential("toy")
            },
            toy_runner,
        )
        .unwrap();
        assert_eq!(render(&resumed), render(&fresh));
        assert_eq!(manifest_sans_run(&path), manifest_sans_run(&fresh_path));

        // A third run resumes everything and executes nothing.
        let idle = run(&m, &opts(None), toy_runner).unwrap();
        assert_eq!(idle.stats.resumed, 12);
        assert_eq!(idle.stats.executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_manifest_is_ignored() {
        let m = matrix();
        let dir = std::env::temp_dir().join("hierbus_campaign_engine_test2");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("toy.manifest.json");
        let other = Matrix::new().axis("a", ["0"]);
        let opts = CampaignOptions {
            manifest_path: Some(path.clone()),
            limit: None,
            ..CampaignOptions::sequential("toy")
        };
        run(&other, &opts, toy_runner).unwrap();
        // Same path, different matrix: starts fresh instead of adopting
        // stale entries.
        let report = run(&m, &opts, toy_runner).unwrap();
        assert_eq!(report.stats.resumed, 0);
        assert_eq!(report.stats.executed, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scaling_runs_every_worker_count() {
        let points = measure_scaling::<Cell, _>(&matrix(), "toy", &[1, 2], toy_runner);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workers, 1);
        assert_eq!(points[1].workers, 2);
    }

    #[test]
    fn chunk_size_derivation() {
        assert_eq!(ClaimStrategy::Chunked.chunk_size(64, 2), 8);
        assert_eq!(ClaimStrategy::Chunked.chunk_size(16, 4), 1);
        assert_eq!(ClaimStrategy::Chunked.chunk_size(0, 1), 1);
        assert_eq!(ClaimStrategy::Chunked.chunk_size(1000, 1), 250);
        assert_eq!(ClaimStrategy::PerScenario.chunk_size(1000, 4), 1);
    }

    #[test]
    fn claim_strategies_merge_identically() {
        let m = matrix();
        let mut renders = Vec::new();
        for claim in [ClaimStrategy::Chunked, ClaimStrategy::PerScenario] {
            for workers in [1, 3, 8] {
                let opts = CampaignOptions {
                    claim,
                    ..CampaignOptions::with_workers("toy", workers)
                };
                let report = run(&m, &opts, toy_runner).unwrap();
                assert!(report.is_complete(), "{claim:?} {workers} workers");
                renders.push(render(&report));
            }
        }
        for r in &renders[1..] {
            assert_eq!(r, &renders[0], "claim strategy changed the merge");
        }
    }

    #[test]
    fn worker_stats_account_for_every_execution() {
        let m = matrix();
        for workers in [1, 3] {
            let report = run(
                &m,
                &CampaignOptions::with_workers("toy", workers),
                toy_runner,
            )
            .unwrap();
            let stats = &report.stats;
            assert_eq!(stats.per_worker.len(), stats.workers);
            let claimed: u64 = stats.per_worker.iter().map(|w| w.claimed).sum();
            let completed: u64 = stats.per_worker.iter().map(|w| w.completed).sum();
            assert_eq!(claimed, stats.executed as u64);
            assert_eq!(completed, stats.executed as u64);
            for w in &stats.per_worker {
                assert_eq!(w.claimed, w.completed, "clean runs finish every claim");
                let u = w.utilization(stats.wall);
                assert!(u >= 0.0 && u.is_finite());
            }
        }
    }

    #[test]
    fn resumed_campaign_reports_idle_workers() {
        // Everything comes from the manifest: no claims, no busy time.
        let m = matrix();
        let dir = std::env::temp_dir().join("hierbus_campaign_wstats_test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CampaignOptions {
            manifest_path: Some(dir.join("toy.manifest.json")),
            ..CampaignOptions::with_workers("toy", 2)
        };
        run(&m, &opts, toy_runner).unwrap();
        let idle = run(&m, &opts, toy_runner).unwrap();
        assert_eq!(idle.stats.executed, 0);
        let claimed: u64 = idle.stats.per_worker.iter().map(|w| w.claimed).sum();
        assert_eq!(claimed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_chunk_bounds_the_cursor_and_counts_retries() {
        let cursor = AtomicUsize::new(0);
        let (lo, r) = claim_chunk(&cursor, 4, 10);
        assert_eq!((lo, r), (0, 0));
        let (lo, _) = claim_chunk(&cursor, 4, 10);
        assert_eq!(lo, 4);
        // The final chunk clamps to len; the cursor never passes it.
        let (lo, _) = claim_chunk(&cursor, 4, 10);
        assert_eq!(lo, 8);
        assert_eq!(cursor.load(Ordering::Relaxed), 10);
        let (lo, _) = claim_chunk(&cursor, 4, 10);
        assert_eq!(lo, 10, "exhausted list claims nothing");
        assert_eq!(cursor.load(Ordering::Relaxed), 10);
        // Contended claiming stays exact: every index claimed once.
        let cursor = AtomicUsize::new(0);
        let claimed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    let (lo, _) = claim_chunk(&cursor, 3, 100);
                    if lo >= 100 {
                        break;
                    }
                    let hi = (lo + 3).min(100);
                    claimed.fetch_add(hi - lo, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(claimed.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn profile_is_present_iff_requested_and_never_changes_results() {
        let m = matrix();
        let base = run(&m, &CampaignOptions::sequential("toy"), toy_runner).unwrap();
        assert!(base.profile.is_none(), "profiling is off by default");
        for workers in [1, 3] {
            let report = run(
                &m,
                &CampaignOptions {
                    profile: true,
                    ..CampaignOptions::with_workers("toy", workers)
                },
                toy_runner,
            )
            .unwrap();
            assert_eq!(render(&report), render(&base), "{workers} workers");
            let profile = report.profile.expect("profiling was requested");
            assert_eq!(profile.workers.len(), report.stats.workers);
            assert!(profile.wall_ns > 0);
            // Every executed scenario produced a simulate and a
            // serialize record.
            let simulated: usize = profile
                .workers
                .iter()
                .map(|w| {
                    w.records
                        .iter()
                        .filter(|r| r.phase == PoolPhase::Simulate)
                        .count()
                })
                .sum();
            assert_eq!(simulated, report.stats.executed);
            // Worker stats and profile agree on claim retries.
            let stats_retries: u64 = report
                .stats
                .per_worker
                .iter()
                .map(|w| w.claim_retries)
                .sum();
            assert_eq!(profile.claim_retries(), stats_retries);
        }
    }

    #[test]
    fn profiled_scaling_points_carry_profiles_and_fractions() {
        let points = measure_scaling_profiled::<(), Cell, _, _>(
            &matrix(),
            "toy",
            &[1, 2],
            ClaimStrategy::Chunked,
            true,
            || (),
            |(), p| toy_runner(p),
        );
        for p in &points {
            let profile = p.profile.as_ref().expect("profiled measurement");
            assert_eq!(profile.workers.len(), p.workers.min(12));
            assert!((0.0..=1.0).contains(&p.busy_frac), "{}", p.busy_frac);
            assert!((0.0..=1.0).contains(&p.utilization), "{}", p.utilization);
        }
        // The unprofiled path stays profile-free.
        let plain = measure_scaling::<Cell, _>(&matrix(), "toy", &[1], toy_runner);
        assert!(plain[0].profile.is_none());
    }

    #[test]
    fn idle_workers_do_not_zero_the_utilization() {
        // 16 scenarios, chunked claiming, 4 workers: chunk size is 1,
        // so a fast worker can drain the list and leave a peer with no
        // completions. Build the report shape directly: one worker
        // claimed nothing.
        let mk = |completed: u64, busy_ms: u64| WorkerStats {
            claimed: completed,
            completed,
            busy: Duration::from_millis(busy_ms),
            claim_retries: 0,
        };
        let report: CampaignReport<Cell> = CampaignReport {
            points: Vec::new(),
            results: Vec::new(),
            stats: CampaignStats {
                total: 16,
                executed: 16,
                resumed: 0,
                pending: 0,
                workers: 4,
                wall: Duration::from_millis(100),
                per_worker: vec![mk(6, 90), mk(5, 85), mk(5, 95), mk(0, 0)],
            },
            profile: None,
        };
        let point = ScalingPoint::from_report(4, report);
        assert_eq!(point.idle_workers, 1);
        assert!(
            point.utilization >= 0.8,
            "idle worker dragged utilization to {}",
            point.utilization
        );
        // All workers active: no idle count, mean busy fraction.
        let report: CampaignReport<Cell> = CampaignReport {
            points: Vec::new(),
            results: Vec::new(),
            stats: CampaignStats {
                total: 16,
                executed: 16,
                resumed: 0,
                pending: 0,
                workers: 2,
                wall: Duration::from_millis(100),
                per_worker: vec![mk(8, 90), mk(8, 50)],
            },
            profile: None,
        };
        let point = ScalingPoint::from_report(2, report);
        assert_eq!(point.idle_workers, 0);
        assert!((point.utilization - 0.7).abs() < 1e-9);
        // Fully resumed run: everything idle, utilization reads 0.
        let report: CampaignReport<Cell> = CampaignReport {
            points: Vec::new(),
            results: Vec::new(),
            stats: CampaignStats {
                total: 16,
                executed: 0,
                resumed: 16,
                pending: 0,
                workers: 2,
                wall: Duration::from_millis(1),
                per_worker: vec![mk(0, 0), mk(0, 0)],
            },
            profile: None,
        };
        let point = ScalingPoint::from_report(2, report);
        assert_eq!(point.idle_workers, 2);
        assert_eq!(point.utilization, 0.0);
    }

    #[test]
    fn straggler_chunks_do_not_collapse_utilization() {
        // Regression for the 4-worker collapse in BENCH_throughput.json:
        // three saturated workers plus one that drew a single short
        // chunk near the end of the run. The old min-over-active rule
        // reported that straggler's 0.128 as the pool's utilization —
        // flagging a pool whose busy_frac was 0.62 as a scaling cliff.
        let mk = |completed: u64, busy_us: u64| WorkerStats {
            claimed: completed,
            completed,
            busy: Duration::from_micros(busy_us),
            claim_retries: 0,
        };
        let report: CampaignReport<Cell> = CampaignReport {
            points: Vec::new(),
            results: Vec::new(),
            stats: CampaignStats {
                total: 16,
                executed: 16,
                resumed: 0,
                pending: 0,
                workers: 4,
                wall: Duration::from_micros(100_000),
                per_worker: vec![mk(6, 90_000), mk(5, 85_000), mk(4, 60_200), mk(1, 12_800)],
            },
            profile: None,
        };
        let point = ScalingPoint::from_report(4, report);
        assert_eq!(point.idle_workers, 0);
        // With every worker active the pool-restricted mean equals
        // busy_frac; the straggler contributes its share, no more.
        assert!((point.busy_frac - 0.62).abs() < 1e-9, "{}", point.busy_frac);
        assert!(
            (point.utilization - point.busy_frac).abs() < 1e-9,
            "all-active utilization {} must equal busy_frac {}",
            point.utilization,
            point.busy_frac
        );
        assert!(
            point.utilization > 0.5,
            "straggler collapsed utilization to {}",
            point.utilization
        );
    }

    #[test]
    fn sink_observes_every_executed_scenario_without_changing_the_merge() {
        use std::sync::Mutex;
        let m = matrix();
        let base = run(&m, &CampaignOptions::sequential("toy"), toy_runner).unwrap();
        for workers in [1, 3] {
            let seen = Mutex::new(Vec::new());
            let opts = CampaignOptions {
                trace_id: Some("t42".to_owned()),
                ..CampaignOptions::with_workers("toy", workers)
            };
            let report = run_with_sink(
                &m,
                &opts,
                || (),
                |(), p| toy_runner(p),
                |scope: &SinkScope, result: &Cell| {
                    assert_eq!(scope.trace_id, Some("t42"));
                    assert!(
                        scope.worker < workers,
                        "worker {} of {workers}",
                        scope.worker
                    );
                    assert!(
                        scope.started_us <= scope.finished_us,
                        "span ends before it starts"
                    );
                    seen.lock()
                        .unwrap()
                        .push((scope.point.index, result.clone()));
                },
            )
            .unwrap();
            assert_eq!(render(&report), render(&base), "{workers} workers");
            let mut seen = seen.into_inner().unwrap();
            seen.sort_by_key(|(i, _)| *i);
            assert_eq!(seen.len(), report.stats.executed);
            for ((i, cell), (p, r)) in seen.iter().zip(report.completed()) {
                assert_eq!(*i, p.index);
                assert_eq!(cell, r, "sink saw a different result than the merge");
            }
        }
    }

    #[test]
    fn resumed_scenarios_never_reach_the_sink() {
        let m = matrix();
        let dir = std::env::temp_dir().join("hierbus_campaign_sink_test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CampaignOptions {
            manifest_path: Some(dir.join("toy.manifest.json")),
            ..CampaignOptions::with_workers("toy", 2)
        };
        run(&m, &opts, toy_runner).unwrap();
        let sunk = AtomicUsize::new(0);
        let report = run_with_sink(
            &m,
            &opts,
            || (),
            |(), p| toy_runner(p),
            |_, _: &Cell| {
                sunk.fetch_add(1, Ordering::Relaxed);
            },
        )
        .unwrap();
        assert_eq!(report.stats.resumed, 12);
        assert_eq!(sunk.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_state_is_built_once_per_worker_and_reused() {
        use std::sync::atomic::AtomicUsize;
        let m = matrix();
        let states_built = AtomicUsize::new(0);
        let report = run_with(
            &m,
            &CampaignOptions::with_workers("toy", 2),
            || {
                states_built.fetch_add(1, Ordering::Relaxed);
                0u64 // scenarios served by this worker's state
            },
            |served, p| {
                *served += 1;
                toy_runner(p)
            },
        )
        .unwrap();
        assert!(report.is_complete());
        let built = states_built.load(Ordering::Relaxed);
        assert!(
            (1..=2).contains(&built),
            "one state per worker, not per scenario (built {built})"
        );
        // Stateless and stateful paths agree byte for byte.
        let base = run(&m, &CampaignOptions::sequential("toy"), toy_runner).unwrap();
        assert_eq!(render(&report), render(&base));
    }
}
