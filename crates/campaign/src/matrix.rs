//! Scenario matrices: the cartesian product of named axes, as plain
//! data.
//!
//! A campaign is defined by its axes — e.g. `workload × interface` for
//! the §4.3 exploration, or `scenario × model` for the ablation
//! benches. The product is enumerated in row-major order (the first
//! axis varies slowest), which fixes the scenario index every other
//! part of the engine keys on: workers pull indices, results merge in
//! index order, and the manifest records completion per index.

use crate::json::Json;

/// One named axis of a scenario matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// Axis name, e.g. `"workload"`.
    pub name: String,
    /// The values the axis sweeps over, in sweep order.
    pub values: Vec<String>,
}

/// One point of the product: its global index plus the value index
/// along every axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioPoint {
    /// Position in row-major enumeration order (the merge key).
    pub index: usize,
    /// Per-axis value indices, parallel to [`Matrix::axes`].
    pub coords: Vec<usize>,
    /// Stable identifier, e.g. `workload=fib_rec/iface=w32_sep` — the
    /// manifest key, so resumed campaigns can detect matrix changes.
    pub key: String,
}

/// The cartesian product of named axes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matrix {
    axes: Vec<Axis>,
}

impl Matrix {
    /// An empty matrix (one implicit scenario once an axis is added;
    /// zero axes enumerate to a single empty point is *not* useful, so
    /// [`points`](Self::points) returns none until an axis exists).
    pub fn new() -> Self {
        Matrix::default()
    }

    /// Adds an axis; builder-style.
    ///
    /// # Panics
    ///
    /// Panics on an empty value list or a duplicate axis name —
    /// both would make scenario indices meaningless.
    pub fn axis<S: Into<String>>(
        mut self,
        name: &str,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "axis {name:?} has no values");
        assert!(
            self.axes.iter().all(|a| a.name != name),
            "duplicate axis {name:?}"
        );
        self.axes.push(Axis {
            name: name.to_owned(),
            values,
        });
        self
    }

    /// The axes in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Total number of scenarios (product of axis lengths; 0 with no
    /// axes).
    pub fn len(&self) -> usize {
        if self.axes.is_empty() {
            0
        } else {
            self.axes.iter().map(|a| a.values.len()).product()
        }
    }

    /// True if the matrix enumerates no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value of `axis` at scenario point `p`.
    pub fn value_of(&self, p: &ScenarioPoint, axis: &str) -> Option<&str> {
        let i = self.axes.iter().position(|a| a.name == axis)?;
        Some(self.axes[i].values[p.coords[i]].as_str())
    }

    /// Enumerates every scenario point in row-major order (first axis
    /// slowest) — the canonical campaign order.
    pub fn points(&self) -> Vec<ScenarioPoint> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for index in 0..n {
            let mut rem = index;
            let mut coords = vec![0; self.axes.len()];
            for (i, axis) in self.axes.iter().enumerate().rev() {
                coords[i] = rem % axis.values.len();
                rem /= axis.values.len();
            }
            let key = self
                .axes
                .iter()
                .zip(&coords)
                .map(|(a, &c)| format!("{}={}", a.name, a.values[c]))
                .collect::<Vec<_>>()
                .join("/");
            out.push(ScenarioPoint { index, coords, key });
        }
        out
    }

    /// A stable fingerprint of the matrix definition (axis names and
    /// values, in order). A manifest written for one fingerprint is
    /// rejected for any other.
    pub fn fingerprint(&self) -> String {
        let mut fp = crate::fingerprint::Fingerprint::new();
        for axis in &self.axes {
            fp.eat(&axis.name);
            for v in &axis.values {
                fp.eat(v);
            }
        }
        fp.finish()
    }

    /// The matrix definition as JSON (for the manifest header).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.axes
                .iter()
                .map(|a| {
                    Json::Obj(vec![
                        ("name".to_owned(), Json::Str(a.name.clone())),
                        (
                            "values".to_owned(),
                            Json::Arr(a.values.iter().map(|v| Json::Str(v.clone())).collect()),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::new()
            .axis("config", ["a", "b", "c"])
            .axis("workload", ["x", "y"])
    }

    #[test]
    fn row_major_enumeration_first_axis_slowest() {
        let m = sample();
        assert_eq!(m.len(), 6);
        let keys: Vec<String> = m.points().into_iter().map(|p| p.key).collect();
        assert_eq!(
            keys,
            [
                "config=a/workload=x",
                "config=a/workload=y",
                "config=b/workload=x",
                "config=b/workload=y",
                "config=c/workload=x",
                "config=c/workload=y",
            ]
        );
    }

    #[test]
    fn value_lookup_matches_coords() {
        let m = sample();
        let points = m.points();
        assert_eq!(m.value_of(&points[3], "config"), Some("b"));
        assert_eq!(m.value_of(&points[3], "workload"), Some("y"));
        assert_eq!(m.value_of(&points[3], "missing"), None);
        assert_eq!(points[3].index, 3);
    }

    #[test]
    fn fingerprint_tracks_definition() {
        let m = sample();
        assert_eq!(m.fingerprint(), sample().fingerprint());
        let other = Matrix::new()
            .axis("config", ["a", "b", "c"])
            .axis("workload", ["x", "z"]);
        assert_ne!(m.fingerprint(), other.fingerprint());
        // Moving a boundary must change the fingerprint (separator is
        // out-of-band, not a character collision).
        let shifted = Matrix::new()
            .axis("config", ["a", "b", "cx"])
            .axis("workload", ["", "y"]);
        assert_ne!(m.fingerprint(), shifted.fingerprint());
    }

    #[test]
    fn empty_matrix_has_no_points() {
        let m = Matrix::new();
        assert!(m.is_empty());
        assert!(m.points().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axis_rejected() {
        let _ = Matrix::new().axis("a", ["1"]).axis("a", ["2"]);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_axis_rejected() {
        let _ = Matrix::new().axis("a", Vec::<String>::new());
    }
}
