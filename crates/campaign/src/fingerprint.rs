//! A reusable FNV-1a fingerprint builder.
//!
//! The manifest machinery needs a stable, dependency-free content hash
//! to detect matrix changes; the serve daemon's result cache needs the
//! same thing over scenario specifications. Both use this builder, so
//! the hash form (64-bit FNV-1a, 16 hex digits) and the out-of-band
//! field separator stay identical everywhere a fingerprint appears.
//!
//! Fields are terminated with an `0xff` byte that cannot appear in
//! UTF-8 text, so moving a boundary between adjacent fields always
//! changes the hash (`["ab", "c"]` and `["a", "bc"]` differ).

/// Incremental 64-bit FNV-1a over a sequence of delimited fields.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    hash: u64,
}

impl Fingerprint {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint {
            hash: Self::OFFSET_BASIS,
        }
    }

    /// Absorbs one field (its bytes plus the out-of-band terminator);
    /// builder-style.
    pub fn field(mut self, s: &str) -> Self {
        self.eat(s);
        self
    }

    /// Absorbs one field, in-place — for loops over collections.
    pub fn eat(&mut self, s: &str) {
        for b in s.bytes().chain([0xff]) {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs an `f64` bit-exactly (the raw IEEE-754 bits, so `-0.0`
    /// and `0.0` differ and every NaN payload is distinguished) — used
    /// to fingerprint characterization databases.
    pub fn eat_f64(&mut self, v: f64) {
        self.eat(&format!("{:016x}", v.to_bits()));
    }

    /// The finished 16-hex-digit fingerprint.
    pub fn finish(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_invocations() {
        let a = Fingerprint::new().field("abc").field("def").finish();
        let b = Fingerprint::new().field("abc").field("def").finish();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn field_boundaries_are_out_of_band() {
        let joined = Fingerprint::new().field("abcdef").finish();
        let split = Fingerprint::new().field("abc").field("def").finish();
        let shifted = Fingerprint::new().field("abcd").field("ef").finish();
        assert_ne!(joined, split);
        assert_ne!(split, shifted);
    }

    #[test]
    fn f64_fields_are_bit_exact() {
        let mut pos = Fingerprint::new();
        pos.eat_f64(0.0);
        let mut neg = Fingerprint::new();
        neg.eat_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(Fingerprint::new().finish(), "cbf29ce484222325");
    }
}
