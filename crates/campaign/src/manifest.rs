//! The resumable campaign manifest.
//!
//! A manifest is a JSON file recording, for one matrix definition,
//! every scenario that has completed together with its serialized
//! result payload. A rerun over the same matrix loads the manifest,
//! skips the completed scenarios, and still produces the identical
//! merged output — the payloads stand in for the skipped runs. The
//! file is fully deterministic (no wall clock, entries in index
//! order), so two campaigns over the same matrix write byte-identical
//! manifests regardless of worker count.

use crate::json::Json;
use crate::matrix::Matrix;
use std::io;
use std::path::Path;

/// Manifest format version (bumped on breaking layout changes).
pub const MANIFEST_VERSION: u64 = 1;

/// One completed scenario: its index, its stable key, and the result
/// payload the campaign's result type serialized.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    pub index: usize,
    pub key: String,
    pub result: Json,
}

/// A campaign manifest: the matrix identity plus the completed
/// scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (informational).
    pub name: String,
    /// [`Matrix::fingerprint`] of the matrix the entries belong to.
    pub fingerprint: String,
    /// Completed scenarios in ascending index order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// An empty manifest for a matrix.
    pub fn new(name: &str, matrix: &Matrix) -> Self {
        Manifest {
            name: name.to_owned(),
            fingerprint: matrix.fingerprint(),
            entries: Vec::new(),
        }
    }

    /// Serializes the manifest (deterministic: index order, no
    /// timestamps).
    pub fn to_json(&self, matrix: &Matrix) -> Json {
        Json::Obj(vec![
            ("version".to_owned(), Json::Num(MANIFEST_VERSION as f64)),
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "fingerprint".to_owned(),
                Json::Str(self.fingerprint.clone()),
            ),
            ("matrix".to_owned(), matrix.to_json()),
            (
                "scenarios".to_owned(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("index".to_owned(), Json::Num(e.index as f64)),
                                ("key".to_owned(), Json::Str(e.key.clone())),
                                ("result".to_owned(), e.result.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on malformed JSON or a missing
    /// required field.
    pub fn from_json(doc: &Json) -> io::Result<Self> {
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {what}"));
        if doc.get("version").and_then(Json::as_u64) != Some(MANIFEST_VERSION) {
            return Err(bad("missing or unsupported version"));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_owned();
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing fingerprint"))?
            .to_owned();
        let mut entries = Vec::new();
        for item in doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing scenarios"))?
        {
            let index = item
                .get("index")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("scenario without index"))? as usize;
            let key = item
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("scenario without key"))?
                .to_owned();
            let result = item
                .get("result")
                .cloned()
                .ok_or_else(|| bad("scenario without result"))?;
            entries.push(ManifestEntry { index, key, result });
        }
        Ok(Manifest {
            name,
            fingerprint,
            entries,
        })
    }

    /// Loads a manifest file. Returns `Ok(None)` if the file does not
    /// exist.
    ///
    /// # Errors
    ///
    /// I/O errors other than not-found, and malformed content.
    pub fn load(path: &Path) -> io::Result<Option<Self>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let doc = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {e}")))?;
        Self::from_json(&doc).map(Some)
    }

    /// Writes the manifest atomically (temp file + rename), so a
    /// campaign killed mid-write never leaves a truncated manifest.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the parent directory or writing.
    pub fn save(&self, path: &Path, matrix: &Matrix) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json(matrix).to_string_pretty())?;
        std::fs::rename(&tmp, path)
    }

    /// True if this manifest was written for `matrix` (same
    /// fingerprint) — the precondition for resuming from it.
    pub fn matches(&self, matrix: &Matrix) -> bool {
        self.fingerprint == matrix.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Matrix {
        Matrix::new().axis("w", ["a", "b"]).axis("k", ["1", "2"])
    }

    #[test]
    fn roundtrips_through_disk() {
        let m = matrix();
        let mut manifest = Manifest::new("test", &m);
        manifest.entries.push(ManifestEntry {
            index: 2,
            key: "w=b/k=1".to_owned(),
            result: Json::Obj(vec![("cycles".to_owned(), Json::Num(42.0))]),
        });
        let dir = std::env::temp_dir().join("hierbus_campaign_manifest_test");
        let path = dir.join("m.json");
        manifest.save(&path, &m).unwrap();
        let loaded = Manifest::load(&path).unwrap().unwrap();
        assert_eq!(loaded, manifest);
        assert!(loaded.matches(&m));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_none_and_garbage_errors() {
        let dir = std::env::temp_dir().join("hierbus_campaign_manifest_test2");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(Manifest::load(&dir.join("nope.json")).unwrap().is_none());
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(Manifest::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let manifest = Manifest::new("test", &matrix());
        let other = Matrix::new().axis("w", ["a"]);
        assert!(!manifest.matches(&other));
    }
}
