//! The resumable campaign manifest.
//!
//! A manifest is a JSON file recording, for one matrix definition,
//! every scenario that has completed together with its serialized
//! result payload. A rerun over the same matrix loads the manifest,
//! skips the completed scenarios, and still produces the identical
//! merged output — the payloads stand in for the skipped runs. The
//! scenario entries are fully deterministic (no wall clock, index
//! order), so two campaigns over the same matrix record byte-identical
//! scenario sections regardless of worker count.
//!
//! The one deliberate exception is the optional `last_run` section: a
//! wall-clock diagnostics record of the most recent run's worker pool
//! (per-worker claim/completion counts, busy time, utilization, claim
//! retries). It never feeds resume decisions or merged results —
//! consumers comparing manifests for determinism strip it first (see
//! [`Json::remove`]) — and manifests written before it existed still
//! parse.

use crate::json::Json;
use crate::matrix::Matrix;
use std::io;
use std::path::Path;

/// Manifest format version (bumped on breaking layout changes).
pub const MANIFEST_VERSION: u64 = 1;

/// One completed scenario: its index, its stable key, and the result
/// payload the campaign's result type serialized.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    pub index: usize,
    pub key: String,
    pub result: Json,
}

/// One worker's diagnostics inside a [`RunRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRecord {
    /// Scenarios this worker claimed from the shared cursor.
    pub claimed: u64,
    /// Scenarios it finished.
    pub completed: u64,
    /// Time spent executing scenarios, ns.
    pub busy_ns: u64,
    /// `busy / wall` of the run.
    pub utilization: f64,
    /// Failed compare-exchange attempts on the shared claim cursor.
    pub claim_retries: u64,
}

impl WorkerRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("claimed".to_owned(), Json::Num(self.claimed as f64)),
            ("completed".to_owned(), Json::Num(self.completed as f64)),
            ("busy_ns".to_owned(), Json::Num(self.busy_ns as f64)),
            ("utilization".to_owned(), Json::Num(self.utilization)),
            (
                "claim_retries".to_owned(),
                Json::Num(self.claim_retries as f64),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(WorkerRecord {
            claimed: json.get("claimed")?.as_u64()?,
            completed: json.get("completed")?.as_u64()?,
            busy_ns: json.get("busy_ns")?.as_u64()?,
            utilization: json.get("utilization")?.as_f64()?,
            claim_retries: json.get("claim_retries")?.as_u64()?,
        })
    }
}

/// Wall-clock diagnostics of the run that last wrote the manifest —
/// informational only, stripped before any determinism comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Worker threads the run used.
    pub workers: usize,
    /// Wall clock of the run's execution phase, ns.
    pub wall_ns: u64,
    /// Per-worker diagnostics in spawn order.
    pub per_worker: Vec<WorkerRecord>,
}

impl RunRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers".to_owned(), Json::Num(self.workers as f64)),
            ("wall_ns".to_owned(), Json::Num(self.wall_ns as f64)),
            (
                "per_worker".to_owned(),
                Json::Arr(self.per_worker.iter().map(WorkerRecord::to_json).collect()),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(RunRecord {
            workers: json.get("workers")?.as_u64()? as usize,
            wall_ns: json.get("wall_ns")?.as_u64()?,
            per_worker: json
                .get("per_worker")?
                .as_arr()?
                .iter()
                .map(WorkerRecord::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// A campaign manifest: the matrix identity plus the completed
/// scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (informational).
    pub name: String,
    /// [`Matrix::fingerprint`] of the matrix the entries belong to.
    pub fingerprint: String,
    /// Completed scenarios in ascending index order.
    pub entries: Vec<ManifestEntry>,
    /// Diagnostics of the run that last saved this manifest, if it
    /// recorded any. Optional and lenient: absent in old manifests,
    /// ignored (not an error) when malformed, never used for resume.
    pub last_run: Option<RunRecord>,
}

impl Manifest {
    /// An empty manifest for a matrix.
    pub fn new(name: &str, matrix: &Matrix) -> Self {
        Manifest {
            name: name.to_owned(),
            fingerprint: matrix.fingerprint(),
            entries: Vec::new(),
            last_run: None,
        }
    }

    /// Serializes the manifest (deterministic up to the optional
    /// `last_run` diagnostics section: entries in index order, no
    /// timestamps).
    pub fn to_json(&self, matrix: &Matrix) -> Json {
        let mut fields = vec![
            ("version".to_owned(), Json::Num(MANIFEST_VERSION as f64)),
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "fingerprint".to_owned(),
                Json::Str(self.fingerprint.clone()),
            ),
            ("matrix".to_owned(), matrix.to_json()),
        ];
        if let Some(run) = &self.last_run {
            fields.push(("last_run".to_owned(), run.to_json()));
        }
        fields.push((
            "scenarios".to_owned(),
            Json::Arr(
                self.entries
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("index".to_owned(), Json::Num(e.index as f64)),
                            ("key".to_owned(), Json::Str(e.key.clone())),
                            ("result".to_owned(), e.result.clone()),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(fields)
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on malformed JSON or a missing
    /// required field.
    pub fn from_json(doc: &Json) -> io::Result<Self> {
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {what}"));
        if doc.get("version").and_then(Json::as_u64) != Some(MANIFEST_VERSION) {
            return Err(bad("missing or unsupported version"));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_owned();
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing fingerprint"))?
            .to_owned();
        let mut entries = Vec::new();
        for item in doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing scenarios"))?
        {
            let index = item
                .get("index")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("scenario without index"))? as usize;
            let key = item
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("scenario without key"))?
                .to_owned();
            let result = item
                .get("result")
                .cloned()
                .ok_or_else(|| bad("scenario without result"))?;
            entries.push(ManifestEntry { index, key, result });
        }
        Ok(Manifest {
            name,
            fingerprint,
            entries,
            last_run: doc.get("last_run").and_then(RunRecord::from_json),
        })
    }

    /// Loads a manifest file. Returns `Ok(None)` if the file does not
    /// exist.
    ///
    /// # Errors
    ///
    /// I/O errors other than not-found, and malformed content.
    pub fn load(path: &Path) -> io::Result<Option<Self>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let doc = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {e}")))?;
        Self::from_json(&doc).map(Some)
    }

    /// Writes the manifest atomically (temp file + rename), so a
    /// campaign killed mid-write never leaves a truncated manifest.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the parent directory or writing.
    pub fn save(&self, path: &Path, matrix: &Matrix) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json(matrix).to_string_pretty())?;
        std::fs::rename(&tmp, path)
    }

    /// True if this manifest was written for `matrix` (same
    /// fingerprint) — the precondition for resuming from it.
    pub fn matches(&self, matrix: &Matrix) -> bool {
        self.fingerprint == matrix.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Matrix {
        Matrix::new().axis("w", ["a", "b"]).axis("k", ["1", "2"])
    }

    #[test]
    fn roundtrips_through_disk() {
        let m = matrix();
        let mut manifest = Manifest::new("test", &m);
        manifest.entries.push(ManifestEntry {
            index: 2,
            key: "w=b/k=1".to_owned(),
            result: Json::Obj(vec![("cycles".to_owned(), Json::Num(42.0))]),
        });
        let dir = std::env::temp_dir().join("hierbus_campaign_manifest_test");
        let path = dir.join("m.json");
        manifest.save(&path, &m).unwrap();
        let loaded = Manifest::load(&path).unwrap().unwrap();
        assert_eq!(loaded, manifest);
        assert!(loaded.matches(&m));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_none_and_garbage_errors() {
        let dir = std::env::temp_dir().join("hierbus_campaign_manifest_test2");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(Manifest::load(&dir.join("nope.json")).unwrap().is_none());
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(Manifest::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let manifest = Manifest::new("test", &matrix());
        let other = Matrix::new().axis("w", ["a"]);
        assert!(!manifest.matches(&other));
    }

    #[test]
    fn last_run_roundtrips_through_disk() {
        let m = matrix();
        let mut manifest = Manifest::new("test", &m);
        manifest.entries.push(ManifestEntry {
            index: 0,
            key: "w=a/k=1".to_owned(),
            result: Json::Num(1.0),
        });
        manifest.last_run = Some(RunRecord {
            workers: 2,
            wall_ns: 1_234_567,
            per_worker: vec![
                WorkerRecord {
                    claimed: 3,
                    completed: 3,
                    busy_ns: 1_000_000,
                    utilization: 0.8125,
                    claim_retries: 1,
                },
                WorkerRecord {
                    claimed: 1,
                    completed: 1,
                    busy_ns: 400_000,
                    utilization: 0.25,
                    claim_retries: 0,
                },
            ],
        });
        let dir = std::env::temp_dir().join("hierbus_campaign_manifest_run_test");
        let path = dir.join("m.json");
        manifest.save(&path, &m).unwrap();
        let loaded = Manifest::load(&path).unwrap().unwrap();
        assert_eq!(loaded, manifest);
        let run = loaded.last_run.unwrap();
        assert_eq!(run.workers, 2);
        assert_eq!(run.per_worker.len(), 2);
        assert_eq!(run.per_worker[0].utilization, 0.8125);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_without_last_run_still_parses() {
        // The exact pre-last_run on-disk layout: old manifests must keep
        // loading, with the field absent.
        let m = matrix();
        let mut old = Manifest::new("legacy", &m);
        old.entries.push(ManifestEntry {
            index: 1,
            key: "w=a/k=2".to_owned(),
            result: Json::Num(7.0),
        });
        let doc = old.to_json(&m).to_string_pretty();
        assert!(!doc.contains("last_run"));
        let loaded = Manifest::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(loaded.last_run, None);
        assert_eq!(loaded.entries, old.entries);
    }

    #[test]
    fn malformed_last_run_is_ignored_not_fatal() {
        let m = matrix();
        let mut doc = Manifest::new("test", &m).to_json(&m);
        doc.set("last_run", Json::Str("garbage".to_owned()));
        let loaded = Manifest::from_json(&doc).unwrap();
        assert_eq!(loaded.last_run, None);
    }

    #[test]
    fn stripping_last_run_restores_byte_determinism() {
        // The documented comparison recipe: parse, remove, re-serialize.
        let m = matrix();
        let mut a = Manifest::new("test", &m);
        let mut b = a.clone();
        a.last_run = Some(RunRecord {
            workers: 1,
            wall_ns: 10,
            per_worker: Vec::new(),
        });
        b.last_run = Some(RunRecord {
            workers: 8,
            wall_ns: 99,
            per_worker: Vec::new(),
        });
        let strip = |m: &Manifest| {
            let mut doc = m.to_json(&matrix());
            doc.remove("last_run");
            doc.to_string_pretty()
        };
        assert_ne!(
            a.to_json(&m).to_string_pretty(),
            b.to_json(&m).to_string_pretty()
        );
        assert_eq!(strip(&a), strip(&b));
    }
}
