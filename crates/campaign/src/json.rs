//! A minimal JSON value model, parser and writer.
//!
//! The campaign manifest and the `BENCH_throughput.json` trajectory
//! file both need machine-readable round-trippable storage, and the
//! workspace is offline (no serde). This module covers exactly the
//! JSON subset those files use: objects, arrays, strings, finite
//! numbers, booleans and null, with deterministic serialization
//! (object keys keep insertion order; floats print with enough digits
//! to round-trip).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Sets `key` in an object value (replacing an existing entry,
    /// keeping its position; appending otherwise). No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(fields) = self {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_owned(), value)),
            }
        }
    }

    /// Removes `key` from an object value, returning the removed value
    /// (later fields keep their relative order). `None` on non-objects
    /// or a missing key.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        if let Json::Obj(fields) = self {
            if let Some(i) = fields.iter().position(|(k, _)| k == key) {
                return Some(fields.remove(i).1);
            }
        }
        None
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format manifests and trajectory files are written in.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Integers print without a fraction so manifests stay stable; other
/// floats use Rust's shortest round-trip formatting.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by our writers;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap_or('\u{fffd}');
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        let reparsed = Json::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(v, reparsed);
        let compact = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, compact);
    }

    #[test]
    fn numbers_print_stably() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(-41.0).to_string_compact(), "-41");
        assert_eq!(Json::Num(2.5).to_string_compact(), "2.5");
        let v = Json::parse("1234567.25").unwrap();
        assert_eq!(v.as_f64(), Some(1234567.25));
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn set_replaces_in_place_and_appends() {
        let mut v = Json::Obj(vec![("a".into(), Json::Num(1.0))]);
        v.set("b", Json::Num(2.0));
        v.set("a", Json::Num(9.0));
        assert_eq!(
            v.as_obj()
                .unwrap()
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!(v.get("a").unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn remove_drops_the_key_and_preserves_order() {
        let mut v = Json::parse(r#"{"a": 1, "b": 2, "c": 3}"#).unwrap();
        assert_eq!(v.remove("b").and_then(|j| j.as_u64()), Some(2));
        assert_eq!(v.remove("b"), None);
        assert_eq!(v.to_string_compact(), r#"{"a":1,"c":3}"#);
        assert_eq!(Json::Num(1.0).remove("a"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\"b\\c\u{1}".into());
        let s = v.to_string_compact();
        assert_eq!(s, "\"a\\\"b\\\\c\\u0001\"");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }
}
