//! A parallel, deterministic simulation-campaign engine.
//!
//! The paper's point is that fast bus models enable design-space
//! exploration (§4.3's Java Card HW/SW sweep) — and exploration-scale
//! work is a *batch* of independent simulations. This crate is the
//! execution layer under every experiment binary:
//!
//! * [`Matrix`] — the scenario matrix: a cartesian product of named
//!   axes (workload × interface × model ...), enumerated in a fixed
//!   row-major order that assigns every scenario a stable index.
//! * [`run`] — the executor: a sharded `std::thread` worker pool where
//!   each worker builds its own simulator per scenario and pulls work
//!   from an atomic cursor; results merge in scenario-index order, so
//!   the merged output is byte-identical for any worker count.
//! * [`Manifest`] — the resumable checkpoint: completed scenarios and
//!   their serialized results, written atomically, so an interrupted
//!   campaign reruns only what is missing.
//! * [`measure_scaling`] — the throughput trajectory (scenarios/s per
//!   worker count) behind the campaign rows of `BENCH_throughput.json`.
//!
//! The [`json`] module carries the manifest and trajectory formats
//! (the workspace is offline — no serde); the only dependency is the
//! workspace's own `hierbus-obs`, whose
//! [`profiling`](hierbus_obs::profiling) module backs the engine's
//! opt-in self-profiler ([`CampaignOptions::profile`]).
//!
//! Determinism contract: the engine adds no nondeterminism of its own
//! to merged artifacts (no wall clock in merged results or the
//! manifest's scenario entries, no iteration-order dependence). A
//! campaign is exactly as deterministic as its runner; wall-clock
//! diagnostics live only in [`CampaignStats`], the opt-in
//! [`CampaignReport::profile`], and the manifest's strippable
//! `last_run` section.

pub mod engine;
pub mod fingerprint;
pub mod json;
pub mod manifest;
pub mod matrix;

pub use engine::{
    measure_scaling, measure_scaling_profiled, measure_scaling_with, run, run_with, run_with_sink,
    CampaignOptions, CampaignPayload, CampaignReport, CampaignStats, ClaimStrategy, ScalingPoint,
    SinkScope, WorkerStats, SCALING_REPS,
};
pub use fingerprint::Fingerprint;
pub use json::Json;
pub use manifest::{Manifest, ManifestEntry, RunRecord, WorkerRecord, MANIFEST_VERSION};
pub use matrix::{Axis, Matrix, ScenarioPoint};

/// Resolves the worker count for experiment binaries: an explicit
/// request wins, else the `CAMPAIGN_WORKERS` environment variable,
/// else 1 (sequential — the golden-output-preserving default).
pub fn worker_count(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("CAMPAIGN_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_prefers_explicit() {
        assert_eq!(worker_count(Some(4)), 4);
        assert_eq!(worker_count(Some(0)), 1);
    }
}
