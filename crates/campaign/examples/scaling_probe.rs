//! Measures how campaign throughput scales with worker count on this
//! host, using a pure CPU-bound toy runner — run it to sanity-check the
//! parallel path before blaming the engine for a flat speedup (a
//! single-core container caps every speedup at 1.0x).
//!
//! `cargo run --release -p hierbus-campaign --example scaling_probe`

use hierbus_campaign::{measure_scaling, CampaignPayload, Json, Matrix};

struct Cell(u64);

impl CampaignPayload for Cell {
    fn to_json(&self) -> Json {
        Json::Num(self.0 as f64)
    }

    fn from_json(j: &Json) -> Option<Self> {
        j.as_u64().map(Cell)
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {cores}");
    let matrix = Matrix::new().axis("i", (0..64).map(|i| i.to_string()));
    let mut counts = vec![1, 2, 4, cores];
    counts.sort_unstable();
    counts.dedup();
    let points = measure_scaling::<Cell, _>(&matrix, "probe", &counts, |p| {
        // An LCG busy loop: ~milliseconds of pure CPU per scenario.
        let mut x = p.index as u64 + 1;
        for _ in 0..3_000_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        Cell(x)
    });
    let base = points[0].scenarios_per_sec;
    for p in &points {
        println!(
            "workers={:<3} wall={:>10.2?}  {:>8.1} scenarios/s  {:.2}x",
            p.workers,
            p.wall,
            p.scenarios_per_sec,
            p.scenarios_per_sec / base
        );
    }
}
