//! The daemon itself: request queue, batch execution, streaming
//! responses, graceful drain — and the telemetry plane that makes it
//! operable as a real service.
//!
//! [`Daemon::serve`] runs one protocol session over any
//! `BufRead`/`Write` pair — stdin/stdout for the `hierbus-serve`
//! binary, an accepted Unix-socket stream, or in-process buffers for
//! tests and the `serve_client` example. A reader thread parses
//! request lines into a FIFO queue so clients can pipeline requests
//! while a batch is executing; the serving loop pops requests one at a
//! time and batches each `run` request's cache misses onto the
//! campaign worker pool, streaming a `result` event from the worker
//! thread the moment each scenario completes.
//!
//! The telemetry plane has three parts. **Request tracing**
//! ([`DaemonOptions::trace_requests`]): every `run` request gets a
//! trace id (`t1`, `t2`, ...) that rides through the queue, the cache
//! pass, the worker pool (via [`CampaignOptions::trace_id`]) and down
//! into the bus model's span collector, assembled per request into one
//! connected Perfetto trace ([`crate::telemetry::TraceBuilder`]) and
//! retained in a ring for the `dump-trace` op. **Live telemetry**: a
//! leveled [`EventLog`], a rolling [`SloWindow`] over request
//! latencies, and a [`MetricsRegistry`] surfaced through the extended
//! `stats` reply, `subscribe` snapshot streaming, and an atomically
//! rewritten Prometheus text file ([`DaemonOptions::metrics_file`]).
//! **Watchdog**: a monitor thread that ticks every
//! [`DaemonOptions::tick_ms`] ms, detecting in-flight requests past
//! [`DaemonOptions::deadline_ms`], a non-empty queue with idle
//! workers, and cache-index flush failures — each emits a warn event
//! plus a counter and flips the `health` op's answer to `degraded`
//! while the condition persists. With everything at its default-off
//! setting the plane adds nothing measurable to the request path (the
//! serve benchmark gates this).
//!
//! Shutdown is drain-and-exit: the reader flags a `shutdown` request
//! out-of-band (it never waits in the queue), the in-flight request
//! finishes normally, every request still queued behind it is answered
//! with a retryable `retry` event, the cache index is flushed, and the
//! session ends with a `bye` event. Input EOF drains the queue fully
//! (nothing is retried — the client simply stopped talking) and
//! flushes the index the same way. `health` probes are answered by the
//! reader thread the moment they parse, so a daemon stuck in a long
//! batch still reports its (degraded) health.

use crate::cache::ResultCache;
use crate::proto::{self, parse_request, Op, Request, PROTOCOL_VERSION};
use crate::session::{db_fingerprint, LeanResult, ServeSession};
use crate::telemetry::{RequestTrace, TraceBuilder, TraceRing, LAYER_SPAN_CAP};
use hierbus_campaign::{run_with_sink, CampaignOptions, CampaignPayload, Json, Matrix, SinkScope};
use hierbus_obs::telemetry::{
    prometheus_text, write_atomic, EventLog, Level, RequestSample, SloWindow, Value,
};
use hierbus_obs::{CounterId, GaugeId, HistogramId, MetricsRegistry, TraceCollector};
use hierbus_power::CharacterizationDb;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default bound on cached results.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Requests a [`SloWindow`] aggregates over.
const SLO_WINDOW: usize = 256;

/// Consecutive monitor ticks of a non-empty queue with no request in
/// flight before the watchdog calls the pool idle.
const IDLE_TICKS: u32 = 3;

/// Upper bucket edges (µs) of the request latency histograms: cache
/// hits land in the low buckets, cold multi-scenario batches in the
/// high ones.
const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// How a [`Daemon`] is configured.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Worker threads for batch execution (clamped to at least 1).
    pub workers: usize,
    /// Result-cache bound (entries; clamped to at least 1).
    pub cache_capacity: usize,
    /// Persisted cache index: loaded (if compatible) on construction,
    /// flushed by the monitor when dirty and on every session drain.
    /// `None` keeps the cache purely in-memory.
    pub cache_index: Option<PathBuf>,
    /// Per-request Perfetto traces to retain for `dump-trace`; 0
    /// disables request tracing entirely (no trace assembly, no layer
    /// span capture).
    pub trace_requests: usize,
    /// Directory `dump-trace` writes retained traces into; without it
    /// the op answers with an error.
    pub trace_dir: Option<PathBuf>,
    /// Event-log capture threshold (`None` = capture off).
    pub log_level: Option<Level>,
    /// Mirror events at this severity or worse to stderr, prefixed
    /// `hierbus-serve:`.
    pub log_stderr: Option<Level>,
    /// Event-log ring capacity.
    pub log_capacity: usize,
    /// Prometheus text exposition file, atomically rewritten by the
    /// monitor whenever the metrics change and once at session end.
    pub metrics_file: Option<PathBuf>,
    /// Watchdog stall deadline for an in-flight request (ms); 0
    /// disables stall detection.
    pub deadline_ms: u64,
    /// Monitor thread tick (ms; clamped to at least 1).
    pub tick_ms: u64,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            workers: 1,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            cache_index: None,
            trace_requests: 0,
            trace_dir: None,
            log_level: None,
            log_stderr: None,
            log_capacity: 256,
            metrics_file: None,
            deadline_ms: 0,
            tick_ms: 25,
        }
    }
}

/// What one protocol session did — returned by [`Daemon::serve`] so
/// callers (the binary's socket loop, tests) can see whether the
/// client asked for shutdown. Out-of-band `health` probes are answered
/// by the reader thread and not counted here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests handled (run/stats/ping/subscribe/dump-trace — not
    /// counting retried ones).
    pub requests: usize,
    /// Result events streamed.
    pub results: usize,
    /// Scenario lookups answered from cache.
    pub cache_hits: u64,
    /// Scenario lookups that went to a worker.
    pub cache_misses: u64,
    /// Requests answered with a `retry` event because they were still
    /// queued when shutdown arrived.
    pub retried: usize,
    /// True when the session ended on a `shutdown` request (false on
    /// input EOF).
    pub shutdown: bool,
}

struct Metrics {
    registry: MetricsRegistry,
    requests: CounterId,
    scenarios: CounterId,
    singles: CounterId,
    multis: CounterId,
    hits: CounterId,
    misses: CounterId,
    evictions: CounterId,
    stalls: CounterId,
    idle_alerts: CounterId,
    flush_failures: CounterId,
    queue_depth: GaugeId,
    latency: HistogramId,
    queue_wait: HistogramId,
    execute: HistogramId,
}

impl Metrics {
    fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let requests = registry.counter("serve.requests");
        let scenarios = registry.counter("serve.scenarios");
        let singles = registry.counter("serve.scenarios.single");
        let multis = registry.counter("serve.scenarios.multi");
        let hits = registry.counter("serve.cache.hit");
        let misses = registry.counter("serve.cache.miss");
        let evictions = registry.counter("serve.cache.eviction");
        let stalls = registry.counter("serve.watchdog.stall");
        let idle_alerts = registry.counter("serve.watchdog.idle");
        let flush_failures = registry.counter("serve.cache.flush_failure");
        let queue_depth = registry.gauge("serve.queue.depth");
        let latency = registry.histogram("serve.request_latency_us", LATENCY_BOUNDS_US);
        let queue_wait = registry.histogram("serve.queue_wait_us", LATENCY_BOUNDS_US);
        let execute = registry.histogram("serve.execute_us", LATENCY_BOUNDS_US);
        Metrics {
            registry,
            requests,
            scenarios,
            singles,
            multis,
            hits,
            misses,
            evictions,
            stalls,
            idle_alerts,
            flush_failures,
            queue_depth,
            latency,
            queue_wait,
            execute,
        }
    }
}

/// A streaming snapshot subscription (one per session at a time; a new
/// `subscribe` replaces the old one).
struct Subscription {
    id: String,
    every: Duration,
    last: Instant,
}

/// The mutable telemetry plane state.
struct Telemetry {
    log: EventLog,
    window: SloWindow,
    traces: TraceRing,
    subscription: Option<Subscription>,
    /// Consecutive monitor ticks with a non-empty queue and nothing in
    /// flight.
    idle_ticks: u32,
    /// Sticky until the next successful cache-index flush.
    flush_failed: bool,
}

/// The request currently executing, watched by the monitor thread.
struct InFlight {
    id: String,
    started: Instant,
    /// The stall warn event fires once per request.
    warned: bool,
}

/// The resident estimation service.
pub struct Daemon {
    db: Arc<CharacterizationDb>,
    db_fp: String,
    workers: usize,
    cache_index: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    metrics_file: Option<PathBuf>,
    deadline_ms: u64,
    tick_ms: u64,
    /// False when neither capture nor stderr wants any level — the
    /// lock-free fast path that keeps disabled logging at one branch.
    log_active: bool,
    cache: Mutex<ResultCache>,
    metrics: Mutex<Metrics>,
    telemetry: Mutex<Telemetry>,
    inflight: Mutex<Option<InFlight>>,
    trace_seq: AtomicU64,
}

impl Daemon {
    /// Builds a daemon over a characterization database. When
    /// [`DaemonOptions::cache_index`] names a compatible persisted
    /// index (same format version, same database fingerprint), the
    /// cache starts warm from it.
    pub fn new(db: Arc<CharacterizationDb>, opts: DaemonOptions) -> Self {
        let db_fp = db_fingerprint(&db);
        let capacity = opts.cache_capacity.max(1);
        let cache = opts
            .cache_index
            .as_deref()
            .and_then(|path| ResultCache::load(path, capacity, &db_fp).ok().flatten())
            .unwrap_or_else(|| ResultCache::new(capacity));
        let mut log = EventLog::new("hierbus-serve", opts.log_level, opts.log_capacity.max(1));
        log.set_stderr(opts.log_stderr);
        let log_active = opts.log_level.is_some() || opts.log_stderr.is_some();
        Daemon {
            db,
            db_fp,
            workers: opts.workers.max(1),
            cache_index: opts.cache_index,
            trace_dir: opts.trace_dir,
            metrics_file: opts.metrics_file,
            deadline_ms: opts.deadline_ms,
            tick_ms: opts.tick_ms.max(1),
            log_active,
            cache: Mutex::new(cache),
            metrics: Mutex::new(Metrics::new()),
            telemetry: Mutex::new(Telemetry {
                log,
                window: SloWindow::new(SLO_WINDOW),
                traces: TraceRing::new(opts.trace_requests),
                subscription: None,
                idle_ticks: 0,
                flush_failed: false,
            }),
            inflight: Mutex::new(None),
            trace_seq: AtomicU64::new(0),
        }
    }

    /// The fingerprint of the database this daemon serves.
    pub fn db_fingerprint(&self) -> &str {
        &self.db_fp
    }

    /// Cached entries right now.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// The daemon's metrics (cache counters, watchdog counters,
    /// latency histograms) as the registry's CSV export.
    pub fn metrics_csv(&self) -> String {
        self.metrics.lock().unwrap().registry.to_csv()
    }

    /// The daemon's metrics in the Prometheus text exposition format —
    /// the content of [`DaemonOptions::metrics_file`].
    pub fn metrics_prometheus(&self) -> String {
        prometheus_text(&self.metrics.lock().unwrap().registry.snapshot())
    }

    /// The buffered event log as JSONL (schema_version 1).
    pub fn telemetry_jsonl(&self) -> String {
        self.telemetry.lock().unwrap().log.to_jsonl()
    }

    /// The retained per-request Perfetto traces, oldest first.
    pub fn request_traces(&self) -> Vec<RequestTrace> {
        self.telemetry
            .lock()
            .unwrap()
            .traces
            .iter()
            .cloned()
            .collect()
    }

    /// Current health: `true` iff no degradation reason is active.
    /// Reasons mirror the watchdog's conditions: a stalled in-flight
    /// request, a non-empty queue with idle workers, a failed
    /// cache-index flush.
    pub fn health(&self) -> (bool, Vec<String>) {
        let mut reasons = Vec::new();
        if self.deadline_ms > 0 {
            if let Some(f) = &*self.inflight.lock().unwrap() {
                if f.started.elapsed() >= Duration::from_millis(self.deadline_ms) {
                    reasons.push(format!("stalled-request:{}", f.id));
                }
            }
        }
        let t = self.telemetry.lock().unwrap();
        if t.idle_ticks >= IDLE_TICKS {
            reasons.push("idle-queue".to_owned());
        }
        if t.flush_failed {
            reasons.push("cache-flush-failure".to_owned());
        }
        (reasons.is_empty(), reasons)
    }

    /// Records a structured event; costs one branch when logging is
    /// off (fields are built only for wanted levels).
    fn log(
        &self,
        level: Level,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, Value)>,
    ) {
        if !self.log_active {
            return;
        }
        let mut t = self.telemetry.lock().unwrap();
        if t.log.wants(level) {
            t.log.emit(level, name, fields());
        }
    }

    /// Runs one protocol session: reads request lines from `input`
    /// until shutdown or EOF, writing response events to `output`.
    ///
    /// # Errors
    ///
    /// The first write error of the session (the drain still
    /// completes), or an I/O error flushing the cache index.
    pub fn serve<R, W>(&self, input: R, output: W) -> io::Result<ServeSummary>
    where
        R: BufRead + Send,
        W: Write + Send,
    {
        let emitter = Emitter::new(output);
        let queue: Mutex<QueueState> = Mutex::new(QueueState::default());
        let cond = Condvar::new();
        let stop = Mutex::new(false);
        let stop_cond = Condvar::new();
        let mut summary = ServeSummary::default();
        self.log(Level::Info, "session.start", || {
            vec![
                ("workers", Value::from(self.workers)),
                ("db", Value::from(self.db_fp.as_str())),
            ]
        });

        std::thread::scope(|scope| {
            scope.spawn(|| {
                for line in input.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_request(&line) {
                        Ok(Request {
                            id,
                            op: Op::Shutdown,
                        }) => {
                            let mut state = queue.lock().unwrap();
                            state.shutdown = Some(id);
                            state.reader_done = true;
                            cond.notify_all();
                            return;
                        }
                        // Answered out-of-band: a daemon busy with a
                        // long batch still answers its liveness probe.
                        Ok(Request { id, op: Op::Health }) => emitter.emit(self.health_event(&id)),
                        Ok(req) => {
                            let mut state = queue.lock().unwrap();
                            state.items.push_back(Item::Req(req, Instant::now()));
                            cond.notify_all();
                        }
                        Err((id, error)) => {
                            self.log(Level::Warn, "request.bad", || {
                                vec![
                                    ("req", Value::from(id.as_str())),
                                    ("error", Value::from(error.as_str())),
                                ]
                            });
                            let mut state = queue.lock().unwrap();
                            state.items.push_back(Item::Bad { id, error });
                            cond.notify_all();
                        }
                    }
                }
                queue.lock().unwrap().reader_done = true;
                cond.notify_all();
            });

            scope.spawn(|| self.monitor_loop(&queue, &emitter, &stop, &stop_cond));

            loop {
                let (item, draining) = {
                    let mut state = queue.lock().unwrap();
                    loop {
                        let draining = state.shutdown.is_some();
                        if let Some(item) = state.items.pop_front() {
                            break (Some(item), draining);
                        }
                        if state.reader_done {
                            break (None, draining);
                        }
                        state = cond.wait(state).unwrap();
                    }
                };
                match item {
                    None => break,
                    Some(item) if draining => {
                        // Queued behind the shutdown: clean retryable
                        // status instead of silence.
                        match item {
                            Item::Req(req, _) => {
                                self.log(Level::Info, "request.retry", || {
                                    vec![("req", Value::from(req.id.as_str()))]
                                });
                                let mut fields = proto::event(&req.id, "retry");
                                fields.push((
                                    "reason".to_owned(),
                                    Json::Str("shutting-down".to_owned()),
                                ));
                                emitter.emit(fields);
                            }
                            Item::Bad { id, error } => self.emit_error(&emitter, &id, &error),
                        }
                        summary.retried += 1;
                    }
                    Some(Item::Bad { id, error }) => self.emit_error(&emitter, &id, &error),
                    Some(Item::Req(req, enqueued)) => {
                        let depth = queue.lock().unwrap().items.len();
                        self.handle(req, enqueued, depth, &emitter, &mut summary);
                    }
                }
            }
            *stop.lock().unwrap() = true;
            stop_cond.notify_all();
        });

        if let Some(path) = &self.metrics_file {
            // Final exposition so short sessions (CI smoke pipes) leave
            // a complete file even if the monitor never ticked.
            let _ = write_atomic(path, &self.metrics_prometheus());
        }
        self.log(Level::Info, "session.end", || {
            vec![
                ("requests", Value::from(summary.requests)),
                ("results", Value::from(summary.results)),
                ("retried", Value::from(summary.retried)),
            ]
        });
        if let Some(path) = &self.cache_index {
            if let Err(e) = self.cache.lock().unwrap().save(path, &self.db_fp) {
                self.note_flush_failure(&e);
                return Err(e);
            }
            self.telemetry.lock().unwrap().flush_failed = false;
        }
        let shutdown_id = queue.into_inner().unwrap().shutdown;
        if let Some(id) = shutdown_id {
            summary.shutdown = true;
            emitter.emit(proto::event(&id, "bye"));
        }
        emitter.finish()?;
        Ok(summary)
    }

    fn note_flush_failure(&self, error: &io::Error) {
        self.log(Level::Warn, "cache.flush_failed", || {
            vec![("error", Value::from(error.to_string()))]
        });
        self.telemetry.lock().unwrap().flush_failed = true;
        let m = &mut *self.metrics.lock().unwrap();
        m.registry.inc(m.flush_failures);
    }

    /// The watchdog / telemetry monitor: ticks until `stop`, checking
    /// for stalled requests and idle-queue conditions, streaming
    /// subscription snapshots, flushing a dirty cache index, and
    /// rewriting the metrics file when the exposition changed.
    fn monitor_loop<W: Write>(
        &self,
        queue: &Mutex<QueueState>,
        emitter: &Emitter<W>,
        stop: &Mutex<bool>,
        stop_cond: &Condvar,
    ) {
        let tick = Duration::from_millis(self.tick_ms);
        let mut last_metrics = String::new();
        let mut last_flush_marker = self.cache_marker();
        loop {
            {
                let guard = stop.lock().unwrap();
                if *guard {
                    break;
                }
                let (guard, _) = stop_cond.wait_timeout(guard, tick).unwrap();
                if *guard {
                    break;
                }
            }
            self.monitor_tick(queue, emitter, &mut last_metrics, &mut last_flush_marker);
        }
    }

    /// `(len, hits, misses, evictions)` — changes whenever the cache's
    /// persisted content or LRU order may have moved.
    fn cache_marker(&self) -> (usize, u64, u64, u64) {
        let c = self.cache.lock().unwrap();
        (c.len(), c.hits(), c.misses(), c.evictions())
    }

    fn monitor_tick<W: Write>(
        &self,
        queue: &Mutex<QueueState>,
        emitter: &Emitter<W>,
        last_metrics: &mut String,
        last_flush_marker: &mut (usize, u64, u64, u64),
    ) {
        let depth = queue.lock().unwrap().items.len();
        {
            let m = &mut *self.metrics.lock().unwrap();
            let id = m.queue_depth;
            m.registry.set_gauge(id, depth as i64);
        }

        // Stall: an in-flight request past the deadline warns once and
        // degrades health() until it completes.
        if self.deadline_ms > 0 {
            let newly_stalled = {
                let mut inflight = self.inflight.lock().unwrap();
                match &mut *inflight {
                    Some(f)
                        if !f.warned
                            && f.started.elapsed() >= Duration::from_millis(self.deadline_ms) =>
                    {
                        f.warned = true;
                        Some((f.id.clone(), f.started.elapsed().as_millis() as u64))
                    }
                    _ => None,
                }
            };
            if let Some((id, elapsed_ms)) = newly_stalled {
                self.log(Level::Warn, "watchdog.stall", || {
                    vec![
                        ("req", Value::from(id.as_str())),
                        ("elapsed_ms", Value::from(elapsed_ms)),
                        ("deadline_ms", Value::from(self.deadline_ms)),
                    ]
                });
                let m = &mut *self.metrics.lock().unwrap();
                m.registry.inc(m.stalls);
            }
        }

        // Idle queue: work waiting while nothing executes means the
        // serving loop is wedged (it should pop within a tick).
        let busy = self.inflight.lock().unwrap().is_some();
        let idle_alert = {
            let mut t = self.telemetry.lock().unwrap();
            if depth > 0 && !busy {
                t.idle_ticks += 1;
            } else {
                t.idle_ticks = 0;
            }
            t.idle_ticks == IDLE_TICKS
        };
        if idle_alert {
            self.log(Level::Warn, "watchdog.idle_queue", || {
                vec![
                    ("depth", Value::from(depth)),
                    ("ticks", Value::from(IDLE_TICKS as u64)),
                ]
            });
            let m = &mut *self.metrics.lock().unwrap();
            m.registry.inc(m.idle_alerts);
        }

        // Subscription snapshots.
        let due = {
            let mut t = self.telemetry.lock().unwrap();
            match &mut t.subscription {
                Some(sub) if sub.last.elapsed() >= sub.every => {
                    sub.last = Instant::now();
                    Some(sub.id.clone())
                }
                _ => None,
            }
        };
        if let Some(id) = due {
            emitter.emit(self.status_event(&id, "snapshot", depth));
        }

        // Flush a dirty cache index so a crash loses at most a tick's
        // worth of fresh results; failures degrade health.
        if let Some(path) = &self.cache_index {
            let marker = self.cache_marker();
            if marker != *last_flush_marker {
                let outcome = self.cache.lock().unwrap().save(path, &self.db_fp);
                match outcome {
                    Ok(()) => {
                        *last_flush_marker = marker;
                        self.telemetry.lock().unwrap().flush_failed = false;
                        self.log(Level::Debug, "cache.flush", || {
                            vec![("entries", Value::from(marker.0))]
                        });
                    }
                    Err(e) => self.note_flush_failure(&e),
                }
            }
        }

        // Metrics file: atomic rewrite, only when the exposition moved.
        if let Some(path) = &self.metrics_file {
            let text = self.metrics_prometheus();
            if text != *last_metrics {
                if let Err(e) = write_atomic(path, &text) {
                    self.log(Level::Warn, "metrics.write_failed", || {
                        vec![("error", Value::from(e.to_string()))]
                    });
                } else {
                    *last_metrics = text;
                }
            }
        }
    }

    fn emit_error<W: Write>(&self, emitter: &Emitter<W>, id: &str, message: &str) {
        self.log(Level::Warn, "request.error", || {
            vec![("req", Value::from(id)), ("message", Value::from(message))]
        });
        let mut fields = proto::event(id, "error");
        fields.push(("message".to_owned(), Json::Str(message.to_owned())));
        emitter.emit(fields);
    }

    fn handle<W: Write + Send>(
        &self,
        req: Request,
        enqueued: Instant,
        queue_depth: usize,
        emitter: &Emitter<W>,
        summary: &mut ServeSummary,
    ) {
        match req.op {
            Op::Ping => {
                emitter.emit(proto::event(&req.id, "pong"));
                summary.requests += 1;
            }
            Op::Stats => {
                emitter.emit(self.status_event(&req.id, "stats", queue_depth));
                summary.requests += 1;
            }
            Op::Health => {
                // Normally intercepted by the reader; answered here too
                // so in-process callers that bypass it still get one.
                emitter.emit(self.health_event(&req.id));
                summary.requests += 1;
            }
            Op::Subscribe { every_ms } => {
                self.handle_subscribe(&req.id, every_ms, queue_depth, emitter);
                summary.requests += 1;
            }
            Op::DumpTrace => {
                self.handle_dump_trace(&req.id, emitter);
                summary.requests += 1;
            }
            Op::Run(specs) => self.handle_run(&req.id, &specs, enqueued, emitter, summary),
            // The reader intercepts shutdown before it can be queued.
            Op::Shutdown => unreachable!("shutdown never reaches the serving loop"),
        }
    }

    fn handle_subscribe<W: Write>(
        &self,
        id: &str,
        every_ms: u64,
        queue_depth: usize,
        emitter: &Emitter<W>,
    ) {
        if every_ms == 0 {
            self.telemetry.lock().unwrap().subscription = None;
            self.log(Level::Info, "subscribe.stop", || {
                vec![("req", Value::from(id))]
            });
            emitter.emit(proto::event(id, "unsubscribed"));
            return;
        }
        self.log(Level::Info, "subscribe.start", || {
            vec![
                ("req", Value::from(id)),
                ("every_ms", Value::from(every_ms)),
            ]
        });
        self.telemetry.lock().unwrap().subscription = Some(Subscription {
            id: id.to_owned(),
            every: Duration::from_millis(every_ms),
            last: Instant::now(),
        });
        // An immediate first snapshot doubles as the subscription ack.
        emitter.emit(self.status_event(id, "snapshot", queue_depth));
    }

    fn handle_dump_trace<W: Write>(&self, id: &str, emitter: &Emitter<W>) {
        let Some(dir) = &self.trace_dir else {
            self.emit_error(emitter, id, "dump-trace requires a trace directory");
            return;
        };
        let traces = self.request_traces();
        let mut files = Vec::with_capacity(traces.len());
        for t in &traces {
            let path = dir.join(format!("{}.trace.json", t.trace_id));
            if let Err(e) = write_atomic(&path, &t.json) {
                self.emit_error(emitter, id, &format!("writing {}: {e}", path.display()));
                return;
            }
            files.push(Json::Str(path.display().to_string()));
        }
        self.log(Level::Info, "trace.dump", || {
            vec![
                ("req", Value::from(id)),
                ("count", Value::from(files.len())),
            ]
        });
        let mut fields = proto::event(id, "traces");
        fields.push(("count".to_owned(), Json::Num(files.len() as f64)));
        fields.push(("files".to_owned(), Json::Arr(files)));
        emitter.emit(fields);
    }

    fn handle_run<W: Write + Send>(
        &self,
        id: &str,
        specs: &[proto::ScenarioSpec],
        enqueued: Instant,
        emitter: &Emitter<W>,
        summary: &mut ServeSummary,
    ) {
        let started = Instant::now();
        let queue_us = enqueued.elapsed().as_micros() as u64;
        let mut scenarios = Vec::with_capacity(specs.len());
        let (mut singles, mut multis) = (0u64, 0u64);
        for (i, spec) in specs.iter().enumerate() {
            match spec.materialize() {
                Ok(s) => {
                    match s {
                        proto::Materialized::Single(_) => singles += 1,
                        proto::Materialized::Multi(_) => multis += 1,
                    }
                    scenarios.push(s);
                }
                Err(e) => {
                    self.emit_error(emitter, id, &format!("scenarios[{i}]: {e}"));
                    summary.requests += 1;
                    return;
                }
            }
        }
        let keys: Vec<String> = specs.iter().map(|s| s.fingerprint(&self.db_fp)).collect();
        let tracing = !self.telemetry.lock().unwrap().traces.is_disabled();
        let trace = format!("t{}", self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1);
        *self.inflight.lock().unwrap() = Some(InFlight {
            id: id.to_owned(),
            started,
            warned: false,
        });

        // Cache pass: answer hits immediately (in request order),
        // collect misses deduplicated by fingerprint.
        let mut miss_keys: Vec<String> = Vec::new();
        let mut miss_scenarios = Vec::new();
        let mut miss_targets: Vec<Vec<usize>> = Vec::new();
        let (hits, misses, evictions_before) = {
            let mut cache = self.cache.lock().unwrap();
            let (h0, m0) = (cache.hits(), cache.misses());
            let evictions_before = cache.evictions();
            for (i, key) in keys.iter().enumerate() {
                if let Some(bytes) = cache.get(key) {
                    self.emit_result(emitter, id, i, key, true, &bytes);
                } else {
                    match miss_keys.iter().position(|k| k == key) {
                        Some(j) => miss_targets[j].push(i),
                        None => {
                            miss_keys.push(key.clone());
                            miss_scenarios.push(scenarios[i].clone());
                            miss_targets.push(vec![i]);
                        }
                    }
                }
            }
            (cache.hits() - h0, cache.misses() - m0, evictions_before)
        };
        let cache_us = enqueued.elapsed().as_micros() as u64;

        // Batch the misses onto the worker pool, streaming each result
        // (and filling the cache) from the worker thread that produced
        // it. One fingerprint axis: the matrix is this request's
        // deduplicated work list. Under tracing the request's trace id
        // and enqueue instant ride into the pool so worker spans share
        // the request's clock, and the first few scenarios run with the
        // bus span collector on.
        let worker_spans: Mutex<Vec<(usize, usize, u64, u64)>> = Mutex::new(Vec::new());
        let layer_caps: Mutex<Vec<(usize, TraceCollector)>> = Mutex::new(Vec::new());
        if !miss_keys.is_empty() {
            let opts = CampaignOptions {
                trace_id: Some(trace.clone()),
                epoch: Some(enqueued),
                ..CampaignOptions::with_workers("serve", self.workers)
            };
            run_with_sink(
                &Matrix::new().axis("spec", miss_keys.iter().cloned()),
                &opts,
                || ServeSession::new(&self.db),
                |session, point| {
                    if tracing && point.index < LAYER_SPAN_CAP {
                        let (result, collector) =
                            session.run_observed(&miss_scenarios[point.index]);
                        layer_caps.lock().unwrap().push((point.index, collector));
                        result
                    } else {
                        session.run_materialized(&miss_scenarios[point.index])
                    }
                },
                |scope: &SinkScope, result: &LeanResult| {
                    let index = scope.point.index;
                    let bytes = result.to_json().to_string_compact();
                    self.cache
                        .lock()
                        .unwrap()
                        .insert(&miss_keys[index], bytes.clone());
                    for &i in &miss_targets[index] {
                        self.emit_result(emitter, id, i, &miss_keys[index], false, &bytes);
                    }
                    if tracing {
                        worker_spans.lock().unwrap().push((
                            scope.worker,
                            index,
                            scope.started_us,
                            scope.finished_us,
                        ));
                    }
                },
            )
            .expect("manifest-less campaign cannot fail on I/O");
        }
        let exec_us = enqueued.elapsed().as_micros() as u64;

        let wall_us = started.elapsed().as_micros() as u64;
        {
            let evicted = self.cache.lock().unwrap().evictions() - evictions_before;
            let m = &mut *self.metrics.lock().unwrap();
            m.registry.inc(m.requests);
            m.registry.add(m.scenarios, specs.len() as u64);
            m.registry.add(m.singles, singles);
            m.registry.add(m.multis, multis);
            m.registry.add(m.hits, hits);
            m.registry.add(m.misses, misses);
            m.registry.add(m.evictions, evicted);
            m.registry.observe(m.latency, wall_us);
            m.registry.observe(m.queue_wait, queue_us);
            m.registry
                .observe(m.execute, exec_us.saturating_sub(cache_us));
        }

        let mut fields = proto::event(id, "done");
        fields.push(("scenarios".to_owned(), Json::Num(specs.len() as f64)));
        fields.push(("hits".to_owned(), Json::Num(hits as f64)));
        fields.push(("misses".to_owned(), Json::Num(misses as f64)));
        if tracing {
            fields.push(("trace".to_owned(), Json::Str(trace.clone())));
        }
        // Wall-clock diagnostics only — comparisons must strip it,
        // like the manifest's last_run section.
        fields.push(("wall_us".to_owned(), Json::Num(wall_us as f64)));
        emitter.emit(fields);
        let done_us = enqueued.elapsed().as_micros() as u64;
        *self.inflight.lock().unwrap() = None;

        self.log(Level::Debug, "request.done", || {
            vec![
                ("req", Value::from(id)),
                ("trace", Value::from(trace.as_str())),
                ("scenarios", Value::from(specs.len())),
                ("hits", Value::from(hits)),
                ("misses", Value::from(misses)),
                ("wall_us", Value::from(wall_us)),
            ]
        });

        {
            let mut t = self.telemetry.lock().unwrap();
            t.window.push(RequestSample {
                queue_us,
                execute_us: exec_us.saturating_sub(cache_us),
                total_us: done_us,
                scenarios: specs.len() as u64,
                hits,
                misses,
            });
        }

        if tracing {
            let mut b = TraceBuilder::new(id, &trace);
            b.daemon_span("queued", 0, queue_us);
            b.daemon_span("cache-check", queue_us, cache_us.saturating_sub(queue_us));
            if !miss_keys.is_empty() {
                b.daemon_span("execute", cache_us, exec_us.saturating_sub(cache_us));
            }
            b.daemon_span("serialize", exec_us, done_us.saturating_sub(exec_us));
            let mut spans = worker_spans.into_inner().unwrap();
            spans.sort_unstable();
            for (worker, index, s, f) in spans {
                b.worker_span(worker, index, &miss_keys[index], s, f);
            }
            let mut caps = layer_caps.into_inner().unwrap();
            caps.sort_unstable_by_key(|(index, _)| *index);
            for (index, collector) in &caps {
                b.layer_spans(*index, collector);
            }
            self.telemetry.lock().unwrap().traces.push(b.finish());
        }

        summary.requests += 1;
        summary.results += specs.len();
        summary.cache_hits += hits;
        summary.cache_misses += misses;
    }

    fn emit_result<W: Write>(
        &self,
        emitter: &Emitter<W>,
        id: &str,
        index: usize,
        key: &str,
        cached: bool,
        bytes: &str,
    ) {
        let mut fields = proto::event(id, "result");
        fields.push(("index".to_owned(), Json::Num(index as f64)));
        fields.push(("key".to_owned(), Json::Str(key.to_owned())));
        fields.push(("cached".to_owned(), Json::Bool(cached)));
        // The cached bytes round-trip the serializer unchanged
        // (shortest-round-trip floats), so a replayed result field is
        // byte-identical to the fresh one.
        fields.push((
            "result".to_owned(),
            Json::parse(bytes).expect("cache holds serialized results"),
        ));
        emitter.emit(fields);
    }

    fn health_event(&self, id: &str) -> Vec<(String, Json)> {
        let (ok, reasons) = self.health();
        let mut fields = proto::event(id, "health");
        fields.push((
            "status".to_owned(),
            Json::Str(if ok { "ok" } else { "degraded" }.to_owned()),
        ));
        fields.push((
            "reasons".to_owned(),
            Json::Arr(reasons.into_iter().map(Json::Str).collect()),
        ));
        fields
    }

    /// The extended status body shared by the `stats` reply and
    /// `subscribe` snapshots: cache counters and occupancy, lifetime
    /// request counters, per-master scenario counts, latency
    /// percentiles, the rolling-window SLO aggregates, watchdog
    /// counters, health, and event-log pressure.
    fn status_event(&self, id: &str, name: &str, queue_depth: usize) -> Vec<(String, Json)> {
        let quantile = |q: Option<u64>| match q {
            Some(v) => Json::Num(v as f64),
            None => Json::Null,
        };
        let mut fields = proto::event(id, name);
        fields.push(("protocol".to_owned(), Json::Num(PROTOCOL_VERSION as f64)));
        fields.push(("workers".to_owned(), Json::Num(self.workers as f64)));
        fields.push(("db".to_owned(), Json::Str(self.db_fp.clone())));
        fields.push(("queue_depth".to_owned(), Json::Num(queue_depth as f64)));
        {
            let cache = self.cache.lock().unwrap();
            fields.push(("cache_len".to_owned(), Json::Num(cache.len() as f64)));
            fields.push((
                "cache_capacity".to_owned(),
                Json::Num(cache.capacity() as f64),
            ));
            fields.push((
                "cache_occupancy".to_owned(),
                Json::Num(cache.len() as f64 / cache.capacity() as f64),
            ));
            fields.push(("cache_hits".to_owned(), Json::Num(cache.hits() as f64)));
            fields.push(("cache_misses".to_owned(), Json::Num(cache.misses() as f64)));
            fields.push((
                "cache_evictions".to_owned(),
                Json::Num(cache.evictions() as f64),
            ));
        }
        {
            let m = self.metrics.lock().unwrap();
            let counter = |id| Json::Num(m.registry.counter_value(id) as f64);
            fields.push(("requests".to_owned(), counter(m.requests)));
            fields.push(("scenarios".to_owned(), counter(m.scenarios)));
            fields.push(("single_scenarios".to_owned(), counter(m.singles)));
            fields.push(("multi_scenarios".to_owned(), counter(m.multis)));
            fields.push(("watchdog_stalls".to_owned(), counter(m.stalls)));
            fields.push(("watchdog_idle".to_owned(), counter(m.idle_alerts)));
            fields.push(("flush_failures".to_owned(), counter(m.flush_failures)));
            let latency = m.registry.histogram_data(m.latency);
            fields.push(("latency_p50_us".to_owned(), quantile(latency.p50())));
            fields.push(("latency_p90_us".to_owned(), quantile(latency.p90())));
            fields.push(("latency_p99_us".to_owned(), quantile(latency.p99())));
        }
        {
            let t = self.telemetry.lock().unwrap();
            let agg = t.window.aggregate();
            fields.push(("win_requests".to_owned(), Json::Num(agg.window as f64)));
            fields.push((
                "win_hit_ratio".to_owned(),
                match agg.hit_ratio {
                    Some(r) => Json::Num(r),
                    None => Json::Null,
                },
            ));
            for (prefix, q) in [
                ("win_queue", agg.queue_us),
                ("win_execute", agg.execute_us),
                ("win_total", agg.total_us),
            ] {
                let get =
                    |f: fn(&hierbus_obs::telemetry::Quantiles) -> u64| quantile(q.as_ref().map(f));
                fields.push((format!("{prefix}_p50_us"), get(|q| q.p50)));
                fields.push((format!("{prefix}_p90_us"), get(|q| q.p90)));
                fields.push((format!("{prefix}_p99_us"), get(|q| q.p99)));
            }
            fields.push(("log_events".to_owned(), Json::Num(t.log.total() as f64)));
            fields.push(("log_dropped".to_owned(), Json::Num(t.log.dropped() as f64)));
            fields.push(("traces_held".to_owned(), Json::Num(t.traces.len() as f64)));
        }
        let (ok, reasons) = self.health();
        fields.push((
            "health".to_owned(),
            Json::Str(if ok { "ok" } else { "degraded" }.to_owned()),
        ));
        fields.push((
            "health_reasons".to_owned(),
            Json::Arr(reasons.into_iter().map(Json::Str).collect()),
        ));
        fields
    }
}

/// Serializes response events to the shared output; the first write
/// error is kept and re-raised when the session ends, later writes are
/// skipped (the client is gone — finish draining, don't panic a
/// worker).
struct Emitter<W: Write> {
    out: Mutex<W>,
    error: Mutex<Option<io::Error>>,
}

impl<W: Write> Emitter<W> {
    fn new(out: W) -> Self {
        Emitter {
            out: Mutex::new(out),
            error: Mutex::new(None),
        }
    }

    fn emit(&self, fields: Vec<(String, Json)>) {
        let mut error = self.error.lock().unwrap();
        if error.is_some() {
            return;
        }
        let line = Json::Obj(fields).to_string_compact();
        let mut out = self.out.lock().unwrap();
        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
            *error = Some(e);
        }
    }

    fn finish(self) -> io::Result<()> {
        match self.error.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// What the reader thread queues for the serving loop.
enum Item {
    /// A parsed request and the instant it was enqueued — the time
    /// origin of its queue-wait measurement and its trace.
    Req(Request, Instant),
    /// A line that failed to parse — answered with an `error` event in
    /// arrival order.
    Bad { id: String, error: String },
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<Item>,
    reader_done: bool,
    /// The id of the shutdown request, set the moment the reader sees
    /// it — out-of-band, so a long-running batch cannot delay drain
    /// detection.
    shutdown: Option<String>,
}
