//! The daemon itself: request queue, batch execution, streaming
//! responses, graceful drain.
//!
//! [`Daemon::serve`] runs one protocol session over any
//! `BufRead`/`Write` pair — stdin/stdout for the `hierbus-serve`
//! binary, an accepted Unix-socket stream, or in-process buffers for
//! tests and the `serve_client` example. A reader thread parses
//! request lines into a FIFO queue so clients can pipeline requests
//! while a batch is executing; the serving loop pops requests one at a
//! time and batches each `run` request's cache misses onto the
//! campaign worker pool, streaming a `result` event from the worker
//! thread the moment each scenario completes.
//!
//! Shutdown is drain-and-exit: the reader flags a `shutdown` request
//! out-of-band (it never waits in the queue), the in-flight request
//! finishes normally, every request still queued behind it is answered
//! with a retryable `retry` event, the cache index is flushed, and the
//! session ends with a `bye` event. Input EOF drains the queue fully
//! (nothing is retried — the client simply stopped talking) and
//! flushes the index the same way.

use crate::cache::ResultCache;
use crate::proto::{self, parse_request, Op, Request, PROTOCOL_VERSION};
use crate::session::{db_fingerprint, LeanResult, ServeSession};
use hierbus_campaign::{run_with_sink, CampaignOptions, CampaignPayload, Json, Matrix};
use hierbus_obs::{CounterId, HistogramId, MetricsRegistry};
use hierbus_power::CharacterizationDb;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Default bound on cached results.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Upper bucket edges (µs) of the request latency histogram: cache
/// hits land in the low buckets, cold multi-scenario batches in the
/// high ones.
const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// How a [`Daemon`] is configured.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Worker threads for batch execution (clamped to at least 1).
    pub workers: usize,
    /// Result-cache bound (entries; clamped to at least 1).
    pub cache_capacity: usize,
    /// Persisted cache index: loaded (if compatible) on construction,
    /// flushed on every session drain. `None` keeps the cache purely
    /// in-memory.
    pub cache_index: Option<PathBuf>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            workers: 1,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            cache_index: None,
        }
    }
}

/// What one protocol session did — returned by [`Daemon::serve`] so
/// callers (the binary's socket loop, tests) can see whether the
/// client asked for shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests handled (run/stats/ping — not counting retried ones).
    pub requests: usize,
    /// Result events streamed.
    pub results: usize,
    /// Scenario lookups answered from cache.
    pub cache_hits: u64,
    /// Scenario lookups that went to a worker.
    pub cache_misses: u64,
    /// Requests answered with a `retry` event because they were still
    /// queued when shutdown arrived.
    pub retried: usize,
    /// True when the session ended on a `shutdown` request (false on
    /// input EOF).
    pub shutdown: bool,
}

struct Metrics {
    registry: MetricsRegistry,
    requests: CounterId,
    scenarios: CounterId,
    hits: CounterId,
    misses: CounterId,
    evictions: CounterId,
    latency: HistogramId,
}

impl Metrics {
    fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let requests = registry.counter("serve.requests");
        let scenarios = registry.counter("serve.scenarios");
        let hits = registry.counter("serve.cache.hit");
        let misses = registry.counter("serve.cache.miss");
        let evictions = registry.counter("serve.cache.eviction");
        let latency = registry.histogram("serve.request_latency_us", LATENCY_BOUNDS_US);
        Metrics {
            registry,
            requests,
            scenarios,
            hits,
            misses,
            evictions,
            latency,
        }
    }
}

/// Serializes response events to the shared output; the first write
/// error is kept and re-raised when the session ends, later writes are
/// skipped (the client is gone — finish draining, don't panic a
/// worker).
struct Emitter<W: Write> {
    out: Mutex<W>,
    error: Mutex<Option<io::Error>>,
}

impl<W: Write> Emitter<W> {
    fn new(out: W) -> Self {
        Emitter {
            out: Mutex::new(out),
            error: Mutex::new(None),
        }
    }

    fn emit(&self, fields: Vec<(String, Json)>) {
        let mut error = self.error.lock().unwrap();
        if error.is_some() {
            return;
        }
        let line = Json::Obj(fields).to_string_compact();
        let mut out = self.out.lock().unwrap();
        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
            *error = Some(e);
        }
    }

    fn finish(self) -> io::Result<()> {
        match self.error.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// What the reader thread queues for the serving loop.
enum Item {
    Req(Request),
    /// A line that failed to parse — answered with an `error` event in
    /// arrival order.
    Bad {
        id: String,
        error: String,
    },
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<Item>,
    reader_done: bool,
    /// The id of the shutdown request, set the moment the reader sees
    /// it — out-of-band, so a long-running batch cannot delay drain
    /// detection.
    shutdown: Option<String>,
}

/// The resident estimation service.
pub struct Daemon {
    db: Arc<CharacterizationDb>,
    db_fp: String,
    workers: usize,
    cache_index: Option<PathBuf>,
    cache: Mutex<ResultCache>,
    metrics: Mutex<Metrics>,
}

impl Daemon {
    /// Builds a daemon over a characterization database. When
    /// [`DaemonOptions::cache_index`] names a compatible persisted
    /// index (same format version, same database fingerprint), the
    /// cache starts warm from it.
    pub fn new(db: Arc<CharacterizationDb>, opts: DaemonOptions) -> Self {
        let db_fp = db_fingerprint(&db);
        let capacity = opts.cache_capacity.max(1);
        let cache = opts
            .cache_index
            .as_deref()
            .and_then(|path| ResultCache::load(path, capacity, &db_fp).ok().flatten())
            .unwrap_or_else(|| ResultCache::new(capacity));
        Daemon {
            db,
            db_fp,
            workers: opts.workers.max(1),
            cache_index: opts.cache_index,
            cache: Mutex::new(cache),
            metrics: Mutex::new(Metrics::new()),
        }
    }

    /// The fingerprint of the database this daemon serves.
    pub fn db_fingerprint(&self) -> &str {
        &self.db_fp
    }

    /// Cached entries right now.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// The daemon's metrics (cache counters, request latency
    /// histogram) as the registry's CSV export.
    pub fn metrics_csv(&self) -> String {
        self.metrics.lock().unwrap().registry.to_csv()
    }

    /// Runs one protocol session: reads request lines from `input`
    /// until shutdown or EOF, writing response events to `output`.
    ///
    /// # Errors
    ///
    /// The first write error of the session (the drain still
    /// completes), or an I/O error flushing the cache index.
    pub fn serve<R, W>(&self, input: R, output: W) -> io::Result<ServeSummary>
    where
        R: BufRead + Send,
        W: Write + Send,
    {
        let emitter = Emitter::new(output);
        let queue: Mutex<QueueState> = Mutex::new(QueueState::default());
        let cond = Condvar::new();
        let mut summary = ServeSummary::default();

        std::thread::scope(|scope| {
            scope.spawn(|| {
                for line in input.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let mut state = queue.lock().unwrap();
                    match parse_request(&line) {
                        Ok(Request {
                            id,
                            op: Op::Shutdown,
                        }) => {
                            state.shutdown = Some(id);
                            state.reader_done = true;
                            cond.notify_all();
                            return;
                        }
                        Ok(req) => state.items.push_back(Item::Req(req)),
                        Err((id, error)) => state.items.push_back(Item::Bad { id, error }),
                    }
                    cond.notify_all();
                }
                queue.lock().unwrap().reader_done = true;
                cond.notify_all();
            });

            loop {
                let (item, draining) = {
                    let mut state = queue.lock().unwrap();
                    loop {
                        let draining = state.shutdown.is_some();
                        if let Some(item) = state.items.pop_front() {
                            break (Some(item), draining);
                        }
                        if state.reader_done {
                            break (None, draining);
                        }
                        state = cond.wait(state).unwrap();
                    }
                };
                match item {
                    None => break,
                    Some(item) if draining => {
                        // Queued behind the shutdown: clean retryable
                        // status instead of silence.
                        match item {
                            Item::Req(req) => {
                                let mut fields = proto::event(&req.id, "retry");
                                fields.push((
                                    "reason".to_owned(),
                                    Json::Str("shutting-down".to_owned()),
                                ));
                                emitter.emit(fields);
                            }
                            Item::Bad { id, error } => self.emit_error(&emitter, &id, &error),
                        }
                        summary.retried += 1;
                    }
                    Some(Item::Bad { id, error }) => self.emit_error(&emitter, &id, &error),
                    Some(Item::Req(req)) => self.handle(req, &emitter, &mut summary),
                }
            }
        });

        if let Some(path) = &self.cache_index {
            self.cache.lock().unwrap().save(path, &self.db_fp)?;
        }
        let shutdown_id = queue.into_inner().unwrap().shutdown;
        if let Some(id) = shutdown_id {
            summary.shutdown = true;
            emitter.emit(proto::event(&id, "bye"));
        }
        emitter.finish()?;
        Ok(summary)
    }

    fn emit_error<W: Write>(&self, emitter: &Emitter<W>, id: &str, message: &str) {
        let mut fields = proto::event(id, "error");
        fields.push(("message".to_owned(), Json::Str(message.to_owned())));
        emitter.emit(fields);
    }

    fn handle<W: Write + Send>(
        &self,
        req: Request,
        emitter: &Emitter<W>,
        summary: &mut ServeSummary,
    ) {
        match req.op {
            Op::Ping => {
                emitter.emit(proto::event(&req.id, "pong"));
                summary.requests += 1;
            }
            Op::Stats => {
                emitter.emit(self.stats_event(&req.id));
                summary.requests += 1;
            }
            Op::Run(specs) => self.handle_run(&req.id, &specs, emitter, summary),
            // The reader intercepts shutdown before it can be queued.
            Op::Shutdown => unreachable!("shutdown never reaches the serving loop"),
        }
    }

    fn handle_run<W: Write + Send>(
        &self,
        id: &str,
        specs: &[proto::ScenarioSpec],
        emitter: &Emitter<W>,
        summary: &mut ServeSummary,
    ) {
        let started = Instant::now();
        let mut scenarios = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            match spec.materialize() {
                Ok(s) => scenarios.push(s),
                Err(e) => {
                    self.emit_error(emitter, id, &format!("scenarios[{i}]: {e}"));
                    summary.requests += 1;
                    return;
                }
            }
        }
        let keys: Vec<String> = specs.iter().map(|s| s.fingerprint(&self.db_fp)).collect();

        // Cache pass: answer hits immediately (in request order),
        // collect misses deduplicated by fingerprint.
        let mut miss_keys: Vec<String> = Vec::new();
        let mut miss_scenarios = Vec::new();
        let mut miss_targets: Vec<Vec<usize>> = Vec::new();
        let (hits, misses, evictions_before) = {
            let mut cache = self.cache.lock().unwrap();
            let (h0, m0) = (cache.hits(), cache.misses());
            let evictions_before = cache.evictions();
            for (i, key) in keys.iter().enumerate() {
                if let Some(bytes) = cache.get(key) {
                    self.emit_result(emitter, id, i, key, true, &bytes);
                } else {
                    match miss_keys.iter().position(|k| k == key) {
                        Some(j) => miss_targets[j].push(i),
                        None => {
                            miss_keys.push(key.clone());
                            miss_scenarios.push(scenarios[i].clone());
                            miss_targets.push(vec![i]);
                        }
                    }
                }
            }
            (cache.hits() - h0, cache.misses() - m0, evictions_before)
        };

        // Batch the misses onto the worker pool, streaming each result
        // (and filling the cache) from the worker thread that produced
        // it. One fingerprint axis: the matrix is this request's
        // deduplicated work list.
        if !miss_keys.is_empty() {
            let matrix = Matrix::new().axis("spec", miss_keys.iter().cloned());
            let opts = CampaignOptions::with_workers("serve", self.workers);
            run_with_sink(
                &matrix,
                &opts,
                || ServeSession::new(&self.db),
                |session, point| session.run_materialized(&miss_scenarios[point.index]),
                |point, result: &LeanResult| {
                    let bytes = result.to_json().to_string_compact();
                    self.cache
                        .lock()
                        .unwrap()
                        .insert(&miss_keys[point.index], bytes.clone());
                    for &i in &miss_targets[point.index] {
                        self.emit_result(emitter, id, i, &miss_keys[point.index], false, &bytes);
                    }
                },
            )
            .expect("manifest-less campaign cannot fail on I/O");
        }

        let wall_us = started.elapsed().as_micros() as u64;
        {
            let evicted = self.cache.lock().unwrap().evictions() - evictions_before;
            let m = &mut *self.metrics.lock().unwrap();
            m.registry.inc(m.requests);
            m.registry.add(m.scenarios, specs.len() as u64);
            m.registry.add(m.hits, hits);
            m.registry.add(m.misses, misses);
            m.registry.add(m.evictions, evicted);
            m.registry.observe(m.latency, wall_us);
        }

        let mut fields = proto::event(id, "done");
        fields.push(("scenarios".to_owned(), Json::Num(specs.len() as f64)));
        fields.push(("hits".to_owned(), Json::Num(hits as f64)));
        fields.push(("misses".to_owned(), Json::Num(misses as f64)));
        // Wall-clock diagnostics only — comparisons must strip it,
        // like the manifest's last_run section.
        fields.push(("wall_us".to_owned(), Json::Num(wall_us as f64)));
        emitter.emit(fields);

        summary.requests += 1;
        summary.results += specs.len();
        summary.cache_hits += hits;
        summary.cache_misses += misses;
    }

    fn emit_result<W: Write>(
        &self,
        emitter: &Emitter<W>,
        id: &str,
        index: usize,
        key: &str,
        cached: bool,
        bytes: &str,
    ) {
        let mut fields = proto::event(id, "result");
        fields.push(("index".to_owned(), Json::Num(index as f64)));
        fields.push(("key".to_owned(), Json::Str(key.to_owned())));
        fields.push(("cached".to_owned(), Json::Bool(cached)));
        // The cached bytes round-trip the serializer unchanged
        // (shortest-round-trip floats), so a replayed result field is
        // byte-identical to the fresh one.
        fields.push((
            "result".to_owned(),
            Json::parse(bytes).expect("cache holds serialized results"),
        ));
        emitter.emit(fields);
    }

    fn stats_event(&self, id: &str) -> Vec<(String, Json)> {
        let cache = self.cache.lock().unwrap();
        let m = self.metrics.lock().unwrap();
        let latency = m.registry.histogram_data(m.latency);
        let quantile = |q: Option<u64>| match q {
            Some(v) => Json::Num(v as f64),
            None => Json::Null,
        };
        let mut fields = proto::event(id, "stats");
        fields.push(("protocol".to_owned(), Json::Num(PROTOCOL_VERSION as f64)));
        fields.push(("workers".to_owned(), Json::Num(self.workers as f64)));
        fields.push(("db".to_owned(), Json::Str(self.db_fp.clone())));
        fields.push(("cache_len".to_owned(), Json::Num(cache.len() as f64)));
        fields.push((
            "cache_capacity".to_owned(),
            Json::Num(cache.capacity() as f64),
        ));
        fields.push(("cache_hits".to_owned(), Json::Num(cache.hits() as f64)));
        fields.push(("cache_misses".to_owned(), Json::Num(cache.misses() as f64)));
        fields.push((
            "cache_evictions".to_owned(),
            Json::Num(cache.evictions() as f64),
        ));
        fields.push((
            "requests".to_owned(),
            Json::Num(m.registry.counter_value(m.requests) as f64),
        ));
        fields.push((
            "scenarios".to_owned(),
            Json::Num(m.registry.counter_value(m.scenarios) as f64),
        ));
        fields.push(("latency_p50_us".to_owned(), quantile(latency.p50())));
        fields.push(("latency_p90_us".to_owned(), quantile(latency.p90())));
        fields.push(("latency_p99_us".to_owned(), quantile(latency.p99())));
        fields
    }
}
