//! The daemon's wire protocol: versioned, line-delimited JSON.
//!
//! Every request and every response is one compact-JSON object per
//! line, carrying the protocol version under `"v"`. Requests name an
//! operation under `"op"` and echo back under `"req"` in every
//! response event, so a client can correlate streamed results with the
//! request that produced them.
//!
//! Requests (protocol 2; version-1 requests are still accepted, the
//! v2 operations below simply didn't exist then):
//!
//! ```text
//! {"v":2,"id":"r1","op":"run","scenarios":[<spec>, ...]}
//! {"v":2,"id":"r2","op":"stats"}
//! {"v":2,"id":"r3","op":"ping"}
//! {"v":2,"id":"r4","op":"health"}
//! {"v":2,"id":"r5","op":"subscribe","every_ms":500}
//! {"v":2,"id":"r6","op":"dump-trace"}
//! {"v":2,"id":"r7","op":"shutdown"}
//! ```
//!
//! A scenario spec is a named canned scenario, a seeded random mix
//! (all mix fields beyond `seed` default to [`MixParams::default`]),
//! or a seeded CPU+DMA contention workload behind a bus arbiter (DMA
//! fields default to [`DmaParams::default`], `policy` to `"fixed"`;
//! `dma_burst` is in beats):
//!
//! ```text
//! {"kind":"named","name":"burst_reads"}
//! {"kind":"mix","seed":7,"count":200,"read_pct":60,"waits":[1,0,0]}
//! {"kind":"multi","seed":7,"policy":"rr","cpu_count":200,"dma_burst":8}
//! ```
//!
//! Responses to a `run` stream one `result` event per scenario in
//! completion order (`cached` marks cache replays), then a terminal
//! `done` event; other operations answer with a single event. The
//! daemon's farewell after a shutdown is a `bye` event, and requests
//! still queued when a shutdown arrives get a `retry` event each —
//! nothing is silently dropped.
//!
//! The v2 telemetry operations: `health` is answered out-of-band by
//! the reader thread (so a daemon busy with a long batch still answers
//! its liveness probe) with an `ok`/`degraded` status plus reasons;
//! `subscribe` asks the monitor thread to stream periodic `snapshot`
//! events — the extended `stats` body — interleaved with whatever else
//! the session is emitting (`every_ms: 0` unsubscribes); `dump-trace`
//! writes every retained per-request Perfetto trace to the daemon's
//! `--trace-dir` and answers with the file list.

use hierbus_campaign::{Fingerprint, Json};
use hierbus_ec::sequences::{self, DataProfile, MixParams, Scenario};
use hierbus_ec::{ArbitrationPolicy, BurstLen, DmaParams, DmaProgram, MultiScenario, WaitProfile};

/// The protocol version this daemon speaks; response events carry it.
pub const PROTOCOL_VERSION: u64 = 2;

/// The oldest protocol version still accepted. Version 1 requests are
/// a strict subset of version 2 (the telemetry operations are new), so
/// v1 clients keep working unchanged; anything outside
/// `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` is rejected with an
/// `error` event.
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// Version of the *result encoding* (the serialized `LeanResult` bytes
/// a fingerprint addresses). Part of every cache fingerprint instead
/// of [`PROTOCOL_VERSION`], so protocol revisions that leave result
/// bytes unchanged — like v2's telemetry operations — don't invalidate
/// warm persisted caches. Bump only when the result bytes themselves
/// change meaning.
pub const RESULT_FORMAT_VERSION: u64 = 1;

/// One scenario specification of a `run` request.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// A canned scenario from [`sequences::all_scenarios`].
    Named {
        /// The scenario's name, e.g. `"burst_reads"`.
        name: String,
    },
    /// Seeded random mixed traffic via [`sequences::random_mix`].
    Mix {
        /// Generator seed.
        seed: u64,
        /// Generation parameters.
        params: MixParams,
        /// Slave wait-state override; the generator's default when
        /// `None`.
        waits: Option<WaitProfile>,
    },
    /// A seeded CPU+DMA contention workload behind a bus arbiter: a
    /// default-parameter CPU mix of `cpu_count` ops and a
    /// [`DmaProgram`] derived from the same seed, exactly as the
    /// multi-master harness builds them.
    Multi {
        /// Generator seed; the DMA program uses `seed ^ 0xD31A`.
        seed: u64,
        /// Who wins contended cycles.
        policy: ArbitrationPolicy,
        /// CPU stimulus length (ops).
        cpu_count: usize,
        /// DMA program parameters (window fields stay at their
        /// defaults so the masters never race on memory).
        dma: DmaParams,
    },
}

/// A materialized spec, ready to run: the daemon's single-master and
/// multi-master execution paths take different system types.
#[derive(Debug, Clone)]
pub enum Materialized {
    /// A single-master scenario.
    Single(Scenario),
    /// A CPU+DMA workload behind an arbiter.
    Multi(MultiScenario),
}

impl ScenarioSpec {
    /// Parses a spec object.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        match json.get("kind").and_then(Json::as_str) {
            Some("named") => Ok(ScenarioSpec::Named {
                name: json
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("named spec missing string field name")?
                    .to_owned(),
            }),
            Some("mix") => {
                let d = MixParams::default();
                let u = |field: &str, default: u64| -> Result<u64, String> {
                    match json.get(field) {
                        None => Ok(default),
                        Some(v) => v
                            .as_u64()
                            .ok_or(format!("mix spec field {field} is not an integer")),
                    }
                };
                let pct = |field: &str, default: u32| -> Result<u32, String> {
                    let v = u(field, default as u64)?;
                    if v > 100 {
                        return Err(format!("mix spec field {field} = {v} outside 0..=100"));
                    }
                    Ok(v as u32)
                };
                let data_profile = match json.get("data_profile").and_then(Json::as_str) {
                    None => d.data_profile,
                    Some("random") => DataProfile::Random,
                    Some("small_values") => DataProfile::SmallValues,
                    Some(other) => return Err(format!("unknown data_profile {other:?}")),
                };
                let waits = match json.get("waits") {
                    None => None,
                    Some(v) => {
                        let arr = v.as_arr().ok_or("mix spec field waits is not an array")?;
                        let n = |i: usize| -> Result<u32, String> {
                            arr.get(i)
                                .and_then(Json::as_u64)
                                .map(|v| v as u32)
                                .ok_or("waits must be three integers".to_owned())
                        };
                        if arr.len() != 3 {
                            return Err("waits must be three integers".to_owned());
                        }
                        Some(WaitProfile::new(n(0)?, n(1)?, n(2)?))
                    }
                };
                Ok(ScenarioSpec::Mix {
                    seed: u("seed", 0)?,
                    params: MixParams {
                        count: u("count", d.count as u64)? as usize,
                        base: u("base", d.base)?,
                        window: u("window", d.window)?,
                        read_pct: pct("read_pct", d.read_pct)?,
                        burst_pct: pct("burst_pct", d.burst_pct)?,
                        max_idle: u("max_idle", d.max_idle as u64)? as u32,
                        fetch_pct: pct("fetch_pct", d.fetch_pct)?,
                        sequential_pct: pct("sequential_pct", d.sequential_pct)?,
                        data_profile,
                    },
                    waits,
                })
            }
            Some("multi") => {
                let d = DmaParams::default();
                let u = |field: &str, default: u64| -> Result<u64, String> {
                    match json.get(field) {
                        None => Ok(default),
                        Some(v) => v
                            .as_u64()
                            .ok_or(format!("multi spec field {field} is not an integer")),
                    }
                };
                let policy = match json.get("policy").and_then(Json::as_str) {
                    None => ArbitrationPolicy::FixedPriority,
                    Some(name) => ArbitrationPolicy::from_name(name)
                        .ok_or(format!("unknown arbitration policy {name:?}"))?,
                };
                let burst = match u("dma_burst", u64::from(d.burst.beats()))? {
                    1 => BurstLen::Single,
                    2 => BurstLen::B2,
                    4 => BurstLen::B4,
                    8 => BurstLen::B8,
                    other => {
                        return Err(format!(
                            "dma_burst = {other} is not a burst length (1|2|4|8)"
                        ))
                    }
                };
                let read_pct = u("dma_read_pct", u64::from(d.read_pct))?;
                if read_pct > 100 {
                    return Err(format!(
                        "multi spec field dma_read_pct = {read_pct} outside 0..=100"
                    ));
                }
                Ok(ScenarioSpec::Multi {
                    seed: u("seed", 0)?,
                    policy,
                    cpu_count: u("cpu_count", MixParams::default().count as u64)? as usize,
                    dma: DmaParams {
                        descriptors: u("dma_descriptors", d.descriptors as u64)? as usize,
                        burst,
                        read_pct: read_pct as u32,
                        max_gap: u("dma_gap", u64::from(d.max_gap))? as u32,
                        ..d
                    },
                })
            }
            Some(other) => Err(format!("unknown scenario kind {other:?}")),
            None => Err("scenario spec missing string field kind".to_owned()),
        }
    }

    /// The spec as protocol JSON (every field explicit).
    pub fn to_json(&self) -> Json {
        match self {
            ScenarioSpec::Named { name } => Json::Obj(vec![
                ("kind".to_owned(), Json::Str("named".to_owned())),
                ("name".to_owned(), Json::Str(name.clone())),
            ]),
            ScenarioSpec::Mix {
                seed,
                params: p,
                waits,
            } => {
                let mut fields = vec![
                    ("kind".to_owned(), Json::Str("mix".to_owned())),
                    ("seed".to_owned(), Json::Num(*seed as f64)),
                    ("count".to_owned(), Json::Num(p.count as f64)),
                    ("base".to_owned(), Json::Num(p.base as f64)),
                    ("window".to_owned(), Json::Num(p.window as f64)),
                    ("read_pct".to_owned(), Json::Num(p.read_pct as f64)),
                    ("burst_pct".to_owned(), Json::Num(p.burst_pct as f64)),
                    ("max_idle".to_owned(), Json::Num(p.max_idle as f64)),
                    ("fetch_pct".to_owned(), Json::Num(p.fetch_pct as f64)),
                    (
                        "sequential_pct".to_owned(),
                        Json::Num(p.sequential_pct as f64),
                    ),
                    (
                        "data_profile".to_owned(),
                        Json::Str(
                            match p.data_profile {
                                DataProfile::Random => "random",
                                DataProfile::SmallValues => "small_values",
                            }
                            .to_owned(),
                        ),
                    ),
                ];
                if let Some(w) = waits {
                    fields.push((
                        "waits".to_owned(),
                        Json::Arr(vec![
                            Json::Num(w.address as f64),
                            Json::Num(w.read as f64),
                            Json::Num(w.write as f64),
                        ]),
                    ));
                }
                Json::Obj(fields)
            }
            ScenarioSpec::Multi {
                seed,
                policy,
                cpu_count,
                dma,
            } => Json::Obj(vec![
                ("kind".to_owned(), Json::Str("multi".to_owned())),
                ("seed".to_owned(), Json::Num(*seed as f64)),
                ("policy".to_owned(), Json::Str(policy.name().to_owned())),
                ("cpu_count".to_owned(), Json::Num(*cpu_count as f64)),
                (
                    "dma_descriptors".to_owned(),
                    Json::Num(dma.descriptors as f64),
                ),
                ("dma_burst".to_owned(), Json::Num(dma.burst.beats() as f64)),
                ("dma_read_pct".to_owned(), Json::Num(dma.read_pct as f64)),
                ("dma_gap".to_owned(), Json::Num(dma.max_gap as f64)),
            ]),
        }
    }

    /// A canonical one-line rendering of the spec: every parameter
    /// explicit, in a fixed order — the text the cache fingerprint
    /// hashes, so two specs collide exactly when they describe the
    /// same simulation.
    pub fn canonical(&self) -> String {
        match self {
            ScenarioSpec::Named { name } => format!("named/{name}"),
            ScenarioSpec::Mix {
                seed,
                params: p,
                waits,
            } => {
                let data = match p.data_profile {
                    DataProfile::Random => "random",
                    DataProfile::SmallValues => "small_values",
                };
                let waits = match waits {
                    None => "default".to_owned(),
                    Some(w) => format!("{},{},{}", w.address, w.read, w.write),
                };
                format!(
                    "mix/seed={}/count={}/base={}/window={}/read={}/burst={}/idle={}/fetch={}/seq={}/data={}/waits={}",
                    seed,
                    p.count,
                    p.base,
                    p.window,
                    p.read_pct,
                    p.burst_pct,
                    p.max_idle,
                    p.fetch_pct,
                    p.sequential_pct,
                    data,
                    waits,
                )
            }
            ScenarioSpec::Multi {
                seed,
                policy,
                cpu_count,
                dma,
            } => format!(
                "multi/seed={}/policy={}/cpu={}/desc={}/burst={}/read={}/gap={}",
                seed,
                policy.name(),
                cpu_count,
                dma.descriptors,
                dma.burst.beats(),
                dma.read_pct,
                dma.max_gap,
            ),
        }
    }

    /// The content-address of this spec under a protocol version and a
    /// characterization database: identical fingerprint ⇔ identical
    /// result bytes.
    pub fn fingerprint(&self, db_fingerprint: &str) -> String {
        Fingerprint::new()
            .field(&format!("hierbus-serve/v{RESULT_FORMAT_VERSION}"))
            .field(db_fingerprint)
            .field(&self.canonical())
            .finish()
    }

    /// Builds the concrete workload, or an error for an unknown name.
    pub fn materialize(&self) -> Result<Materialized, String> {
        match self {
            ScenarioSpec::Named { name } => sequences::all_scenarios()
                .into_iter()
                .find(|s| s.name == name)
                .map(Materialized::Single)
                .ok_or(format!("unknown scenario name {name:?}")),
            ScenarioSpec::Mix {
                seed,
                params,
                waits,
            } => {
                let mut scenario = sequences::random_mix(*seed, *params);
                if let Some(w) = waits {
                    scenario.waits = *w;
                }
                Ok(Materialized::Single(scenario))
            }
            ScenarioSpec::Multi {
                seed,
                policy,
                cpu_count,
                dma,
            } => {
                let cpu = sequences::random_mix(
                    *seed,
                    MixParams {
                        count: *cpu_count,
                        ..MixParams::default()
                    },
                );
                // The same derivation the equivalence harness uses, so
                // a served multi result is reproducible offline.
                let program = DmaProgram::seeded(*seed ^ 0xD31A, *dma);
                Ok(Materialized::Multi(MultiScenario::new(
                    "serve-multi",
                    cpu,
                    &program,
                    *policy,
                )))
            }
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Run (or replay from cache) a batch of scenarios.
    Run(Vec<ScenarioSpec>),
    /// Report cache and latency statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Health probe: `ok` or `degraded` with reasons, answered
    /// out-of-band even while a batch is executing.
    Health,
    /// Stream periodic `snapshot` events every `every_ms` ms,
    /// interleaved with other responses; `0` cancels the subscription.
    Subscribe {
        /// Snapshot period in milliseconds (0 = unsubscribe).
        every_ms: u64,
    },
    /// Write the retained per-request Perfetto traces to the daemon's
    /// trace directory and report the files written.
    DumpTrace,
    /// Drain and exit.
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in every response event.
    pub id: String,
    /// The requested operation.
    pub op: Op,
}

/// Parses one request line. The error carries the client id when one
/// could be recovered, so even a malformed request gets a correlated
/// `error` event.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let json = Json::parse(line)
        .map_err(|e| (String::new(), format!("request is not valid JSON: {e}")))?;
    let id = json
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_owned();
    let fail = |msg: String| Err((id.clone(), msg));
    match json.get("v").and_then(Json::as_u64) {
        Some(v) if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v) => {}
        Some(v) => {
            return fail(format!(
                "unsupported protocol version {v} (this daemon speaks \
                 {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
            ))
        }
        None => return fail("request missing integer field v".to_owned()),
    }
    match json.get("op").and_then(Json::as_str) {
        Some("run") => {
            let specs = match json.get("scenarios").and_then(Json::as_arr) {
                Some(arr) if !arr.is_empty() => arr,
                Some(_) => return fail("run request has an empty scenarios array".to_owned()),
                None => return fail("run request missing scenarios array".to_owned()),
            };
            let mut parsed = Vec::with_capacity(specs.len());
            for (i, spec) in specs.iter().enumerate() {
                match ScenarioSpec::from_json(spec) {
                    Ok(s) => parsed.push(s),
                    Err(e) => return fail(format!("scenarios[{i}]: {e}")),
                }
            }
            Ok(Request {
                id,
                op: Op::Run(parsed),
            })
        }
        Some("stats") => Ok(Request { id, op: Op::Stats }),
        Some("ping") => Ok(Request { id, op: Op::Ping }),
        Some("health") => Ok(Request { id, op: Op::Health }),
        Some("subscribe") => {
            let every_ms = match json.get("every_ms") {
                None => 1_000,
                Some(v) => match v.as_u64() {
                    Some(ms) => ms,
                    None => return fail("subscribe field every_ms is not an integer".to_owned()),
                },
            };
            Ok(Request {
                id,
                op: Op::Subscribe { every_ms },
            })
        }
        Some("dump-trace") => Ok(Request {
            id,
            op: Op::DumpTrace,
        }),
        Some("shutdown") => Ok(Request {
            id,
            op: Op::Shutdown,
        }),
        Some(other) => fail(format!("unknown op {other:?}")),
        None => fail("request missing string field op".to_owned()),
    }
}

/// Starts a response event: version, correlation id, event name.
pub fn event(id: &str, name: &str) -> Vec<(String, Json)> {
    vec![
        ("v".to_owned(), Json::Num(PROTOCOL_VERSION as f64)),
        ("req".to_owned(), Json::Str(id.to_owned())),
        ("event".to_owned(), Json::Str(name.to_owned())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_roundtrips() {
        let specs = vec![
            ScenarioSpec::Named {
                name: "burst_reads".to_owned(),
            },
            ScenarioSpec::Mix {
                seed: 7,
                params: MixParams {
                    count: 50,
                    ..MixParams::default()
                },
                waits: Some(WaitProfile::new(1, 0, 2)),
            },
        ];
        let line = Json::Obj(vec![
            ("v".to_owned(), Json::Num(1.0)),
            ("id".to_owned(), Json::Str("r1".to_owned())),
            ("op".to_owned(), Json::Str("run".to_owned())),
            (
                "scenarios".to_owned(),
                Json::Arr(specs.iter().map(ScenarioSpec::to_json).collect()),
            ),
        ])
        .to_string_compact();
        let req = parse_request(&line).unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.op, Op::Run(specs));
    }

    #[test]
    fn mix_defaults_fill_in() {
        let req = parse_request(
            r#"{"v":1,"id":"x","op":"run","scenarios":[{"kind":"mix","seed":3,"count":10}]}"#,
        )
        .unwrap();
        let Op::Run(specs) = req.op else {
            panic!("not a run")
        };
        let ScenarioSpec::Mix {
            seed,
            params,
            waits,
        } = &specs[0]
        else {
            panic!("not a mix")
        };
        assert_eq!(*seed, 3);
        assert_eq!(params.count, 10);
        assert_eq!(params.read_pct, MixParams::default().read_pct);
        assert_eq!(*waits, None);
    }

    #[test]
    fn version_and_op_are_enforced() {
        let (id, err) = parse_request(r#"{"v":3,"id":"a","op":"ping"}"#).unwrap_err();
        assert_eq!(id, "a");
        assert!(err.contains("unsupported protocol version"), "{err}");
        let (_, err) = parse_request(r#"{"v":0,"id":"a","op":"ping"}"#).unwrap_err();
        assert!(err.contains("unsupported protocol version"), "{err}");
        let (_, err) = parse_request(r#"{"id":"a","op":"ping"}"#).unwrap_err();
        assert!(err.contains("missing integer field v"), "{err}");
        let (_, err) = parse_request(r#"{"v":1,"id":"a","op":"dance"}"#).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
        let (_, err) = parse_request("not json at all").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        // v1 requests remain valid on a v2 daemon.
        let req = parse_request(r#"{"v":1,"id":"old","op":"ping"}"#).unwrap();
        assert_eq!(req.op, Op::Ping);
    }

    #[test]
    fn telemetry_ops_parse() {
        let req = parse_request(r#"{"v":2,"id":"h","op":"health"}"#).unwrap();
        assert_eq!(req.op, Op::Health);
        let req = parse_request(r#"{"v":2,"id":"t","op":"dump-trace"}"#).unwrap();
        assert_eq!(req.op, Op::DumpTrace);
        let req = parse_request(r#"{"v":2,"id":"s","op":"subscribe","every_ms":250}"#).unwrap();
        assert_eq!(req.op, Op::Subscribe { every_ms: 250 });
        // every_ms defaults; 0 is the unsubscribe sentinel.
        let req = parse_request(r#"{"v":2,"id":"s","op":"subscribe"}"#).unwrap();
        assert_eq!(req.op, Op::Subscribe { every_ms: 1_000 });
        let req = parse_request(r#"{"v":2,"id":"s","op":"subscribe","every_ms":0}"#).unwrap();
        assert_eq!(req.op, Op::Subscribe { every_ms: 0 });
        let (_, err) =
            parse_request(r#"{"v":2,"id":"s","op":"subscribe","every_ms":"fast"}"#).unwrap_err();
        assert!(err.contains("every_ms"), "{err}");
    }

    #[test]
    fn fingerprints_survive_the_protocol_bump() {
        // Cache fingerprints hash RESULT_FORMAT_VERSION, not
        // PROTOCOL_VERSION: the v1→v2 protocol revision left result
        // bytes unchanged, so warm persisted caches must keep matching.
        assert_eq!(RESULT_FORMAT_VERSION, 1);
        let spec = ScenarioSpec::Named {
            name: "burst_reads".to_owned(),
        };
        // The domain string predates the bump; pin it.
        let expected = Fingerprint::new()
            .field("hierbus-serve/v1")
            .field("db00")
            .field(&spec.canonical())
            .finish();
        assert_eq!(spec.fingerprint("db00"), expected);
    }

    #[test]
    fn fingerprints_separate_distinct_specs() {
        let named = ScenarioSpec::Named {
            name: "burst_reads".to_owned(),
        };
        let mix = |seed| ScenarioSpec::Mix {
            seed,
            params: MixParams::default(),
            waits: None,
        };
        let db = "0123456789abcdef";
        assert_eq!(named.fingerprint(db), named.fingerprint(db));
        assert_ne!(named.fingerprint(db), mix(0).fingerprint(db));
        assert_ne!(mix(0).fingerprint(db), mix(1).fingerprint(db));
        assert_ne!(mix(0).fingerprint(db), mix(0).fingerprint("another-db00"));
        // The waits override is part of the identity.
        let waited = ScenarioSpec::Mix {
            seed: 0,
            params: MixParams::default(),
            waits: Some(WaitProfile::ZERO),
        };
        assert_ne!(mix(0).fingerprint(db), waited.fingerprint(db));
    }

    #[test]
    fn materialize_finds_named_scenarios_and_rejects_unknown() {
        let ok = ScenarioSpec::Named {
            name: "single_read".to_owned(),
        };
        let Materialized::Single(s) = ok.materialize().unwrap() else {
            panic!("named specs are single-master")
        };
        assert_eq!(s.name, "single_read");
        let bad = ScenarioSpec::Named {
            name: "no_such_scenario".to_owned(),
        };
        assert!(bad.materialize().is_err());
        let mix = ScenarioSpec::Mix {
            seed: 9,
            params: MixParams {
                count: 25,
                ..MixParams::default()
            },
            waits: Some(WaitProfile::new(2, 1, 0)),
        };
        let Materialized::Single(scenario) = mix.materialize().unwrap() else {
            panic!("mix specs are single-master")
        };
        assert_eq!(scenario.len(), 25);
        assert_eq!(scenario.waits, WaitProfile::new(2, 1, 0));
    }

    #[test]
    fn multi_specs_roundtrip_and_default() {
        let spec = ScenarioSpec::Multi {
            seed: 11,
            policy: ArbitrationPolicy::RoundRobin,
            cpu_count: 40,
            dma: DmaParams {
                descriptors: 8,
                burst: BurstLen::B8,
                read_pct: 25,
                max_gap: 1,
                ..DmaParams::default()
            },
        };
        let line = spec.to_json().to_string_compact();
        assert_eq!(
            ScenarioSpec::from_json(&Json::parse(&line).unwrap()),
            Ok(spec.clone())
        );
        // Defaults: bare seed gets the fixed-priority harness defaults.
        let bare =
            ScenarioSpec::from_json(&Json::parse(r#"{"kind":"multi","seed":3}"#).unwrap()).unwrap();
        let ScenarioSpec::Multi {
            seed,
            policy,
            cpu_count,
            dma,
        } = &bare
        else {
            panic!("not a multi")
        };
        assert_eq!(*seed, 3);
        assert_eq!(*policy, ArbitrationPolicy::FixedPriority);
        assert_eq!(*cpu_count, MixParams::default().count);
        assert_eq!(*dma, DmaParams::default());
        // Bad fields are rejected with field-specific errors.
        for (line, needle) in [
            (r#"{"kind":"multi","policy":"lifo"}"#, "arbitration policy"),
            (r#"{"kind":"multi","dma_burst":3}"#, "burst length"),
            (r#"{"kind":"multi","dma_read_pct":101}"#, "0..=100"),
        ] {
            let err = ScenarioSpec::from_json(&Json::parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn multi_specs_materialize_and_fingerprint_distinctly() {
        let multi = |seed, policy| ScenarioSpec::Multi {
            seed,
            policy,
            cpu_count: 30,
            dma: DmaParams::default(),
        };
        let spec = multi(5, ArbitrationPolicy::FixedPriority);
        let Materialized::Multi(ms) = spec.materialize().unwrap() else {
            panic!("multi specs are multi-master")
        };
        assert_eq!(ms.cpu.len(), 30);
        assert_eq!(ms.dma_ops.len(), DmaParams::default().descriptors);
        assert_eq!(ms.policy, ArbitrationPolicy::FixedPriority);
        let db = "0123456789abcdef";
        assert_eq!(spec.fingerprint(db), spec.fingerprint(db));
        // The policy and the seed are part of the identity, and a multi
        // spec never collides with a mix of the same seed.
        assert_ne!(
            spec.fingerprint(db),
            multi(5, ArbitrationPolicy::RoundRobin).fingerprint(db)
        );
        assert_ne!(
            spec.fingerprint(db),
            multi(6, ArbitrationPolicy::FixedPriority).fingerprint(db)
        );
        let mix = ScenarioSpec::Mix {
            seed: 5,
            params: MixParams::default(),
            waits: None,
        };
        assert_ne!(spec.fingerprint(db), mix.fingerprint(db));
    }
}
