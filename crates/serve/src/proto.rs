//! The daemon's wire protocol: versioned, line-delimited JSON.
//!
//! Every request and every response is one compact-JSON object per
//! line, carrying the protocol version under `"v"`. Requests name an
//! operation under `"op"` and echo back under `"req"` in every
//! response event, so a client can correlate streamed results with the
//! request that produced them.
//!
//! Requests:
//!
//! ```text
//! {"v":1,"id":"r1","op":"run","scenarios":[<spec>, ...]}
//! {"v":1,"id":"r2","op":"stats"}
//! {"v":1,"id":"r3","op":"ping"}
//! {"v":1,"id":"r4","op":"shutdown"}
//! ```
//!
//! A scenario spec is either a named canned scenario or a seeded
//! random mix (all mix fields beyond `seed` default to
//! [`MixParams::default`]):
//!
//! ```text
//! {"kind":"named","name":"burst_reads"}
//! {"kind":"mix","seed":7,"count":200,"read_pct":60,"waits":[1,0,0]}
//! ```
//!
//! Responses to a `run` stream one `result` event per scenario in
//! completion order (`cached` marks cache replays), then a terminal
//! `done` event; other operations answer with a single event. The
//! daemon's farewell after a shutdown is a `bye` event, and requests
//! still queued when a shutdown arrives get a `retry` event each —
//! nothing is silently dropped.

use hierbus_campaign::{Fingerprint, Json};
use hierbus_ec::sequences::{self, DataProfile, MixParams, Scenario};
use hierbus_ec::WaitProfile;

/// The protocol version this daemon speaks; requests carrying any
/// other version are rejected with an `error` event.
pub const PROTOCOL_VERSION: u64 = 1;

/// One scenario specification of a `run` request.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// A canned scenario from [`sequences::all_scenarios`].
    Named {
        /// The scenario's name, e.g. `"burst_reads"`.
        name: String,
    },
    /// Seeded random mixed traffic via [`sequences::random_mix`].
    Mix {
        /// Generator seed.
        seed: u64,
        /// Generation parameters.
        params: MixParams,
        /// Slave wait-state override; the generator's default when
        /// `None`.
        waits: Option<WaitProfile>,
    },
}

impl ScenarioSpec {
    /// Parses a spec object.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        match json.get("kind").and_then(Json::as_str) {
            Some("named") => Ok(ScenarioSpec::Named {
                name: json
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("named spec missing string field name")?
                    .to_owned(),
            }),
            Some("mix") => {
                let d = MixParams::default();
                let u = |field: &str, default: u64| -> Result<u64, String> {
                    match json.get(field) {
                        None => Ok(default),
                        Some(v) => v
                            .as_u64()
                            .ok_or(format!("mix spec field {field} is not an integer")),
                    }
                };
                let pct = |field: &str, default: u32| -> Result<u32, String> {
                    let v = u(field, default as u64)?;
                    if v > 100 {
                        return Err(format!("mix spec field {field} = {v} outside 0..=100"));
                    }
                    Ok(v as u32)
                };
                let data_profile = match json.get("data_profile").and_then(Json::as_str) {
                    None => d.data_profile,
                    Some("random") => DataProfile::Random,
                    Some("small_values") => DataProfile::SmallValues,
                    Some(other) => return Err(format!("unknown data_profile {other:?}")),
                };
                let waits = match json.get("waits") {
                    None => None,
                    Some(v) => {
                        let arr = v.as_arr().ok_or("mix spec field waits is not an array")?;
                        let n = |i: usize| -> Result<u32, String> {
                            arr.get(i)
                                .and_then(Json::as_u64)
                                .map(|v| v as u32)
                                .ok_or("waits must be three integers".to_owned())
                        };
                        if arr.len() != 3 {
                            return Err("waits must be three integers".to_owned());
                        }
                        Some(WaitProfile::new(n(0)?, n(1)?, n(2)?))
                    }
                };
                Ok(ScenarioSpec::Mix {
                    seed: u("seed", 0)?,
                    params: MixParams {
                        count: u("count", d.count as u64)? as usize,
                        base: u("base", d.base)?,
                        window: u("window", d.window)?,
                        read_pct: pct("read_pct", d.read_pct)?,
                        burst_pct: pct("burst_pct", d.burst_pct)?,
                        max_idle: u("max_idle", d.max_idle as u64)? as u32,
                        fetch_pct: pct("fetch_pct", d.fetch_pct)?,
                        sequential_pct: pct("sequential_pct", d.sequential_pct)?,
                        data_profile,
                    },
                    waits,
                })
            }
            Some(other) => Err(format!("unknown scenario kind {other:?}")),
            None => Err("scenario spec missing string field kind".to_owned()),
        }
    }

    /// The spec as protocol JSON (every field explicit).
    pub fn to_json(&self) -> Json {
        match self {
            ScenarioSpec::Named { name } => Json::Obj(vec![
                ("kind".to_owned(), Json::Str("named".to_owned())),
                ("name".to_owned(), Json::Str(name.clone())),
            ]),
            ScenarioSpec::Mix {
                seed,
                params: p,
                waits,
            } => {
                let mut fields = vec![
                    ("kind".to_owned(), Json::Str("mix".to_owned())),
                    ("seed".to_owned(), Json::Num(*seed as f64)),
                    ("count".to_owned(), Json::Num(p.count as f64)),
                    ("base".to_owned(), Json::Num(p.base as f64)),
                    ("window".to_owned(), Json::Num(p.window as f64)),
                    ("read_pct".to_owned(), Json::Num(p.read_pct as f64)),
                    ("burst_pct".to_owned(), Json::Num(p.burst_pct as f64)),
                    ("max_idle".to_owned(), Json::Num(p.max_idle as f64)),
                    ("fetch_pct".to_owned(), Json::Num(p.fetch_pct as f64)),
                    (
                        "sequential_pct".to_owned(),
                        Json::Num(p.sequential_pct as f64),
                    ),
                    (
                        "data_profile".to_owned(),
                        Json::Str(
                            match p.data_profile {
                                DataProfile::Random => "random",
                                DataProfile::SmallValues => "small_values",
                            }
                            .to_owned(),
                        ),
                    ),
                ];
                if let Some(w) = waits {
                    fields.push((
                        "waits".to_owned(),
                        Json::Arr(vec![
                            Json::Num(w.address as f64),
                            Json::Num(w.read as f64),
                            Json::Num(w.write as f64),
                        ]),
                    ));
                }
                Json::Obj(fields)
            }
        }
    }

    /// A canonical one-line rendering of the spec: every parameter
    /// explicit, in a fixed order — the text the cache fingerprint
    /// hashes, so two specs collide exactly when they describe the
    /// same simulation.
    pub fn canonical(&self) -> String {
        match self {
            ScenarioSpec::Named { name } => format!("named/{name}"),
            ScenarioSpec::Mix {
                seed,
                params: p,
                waits,
            } => {
                let data = match p.data_profile {
                    DataProfile::Random => "random",
                    DataProfile::SmallValues => "small_values",
                };
                let waits = match waits {
                    None => "default".to_owned(),
                    Some(w) => format!("{},{},{}", w.address, w.read, w.write),
                };
                format!(
                    "mix/seed={}/count={}/base={}/window={}/read={}/burst={}/idle={}/fetch={}/seq={}/data={}/waits={}",
                    seed,
                    p.count,
                    p.base,
                    p.window,
                    p.read_pct,
                    p.burst_pct,
                    p.max_idle,
                    p.fetch_pct,
                    p.sequential_pct,
                    data,
                    waits,
                )
            }
        }
    }

    /// The content-address of this spec under a protocol version and a
    /// characterization database: identical fingerprint ⇔ identical
    /// result bytes.
    pub fn fingerprint(&self, db_fingerprint: &str) -> String {
        Fingerprint::new()
            .field(&format!("hierbus-serve/v{PROTOCOL_VERSION}"))
            .field(db_fingerprint)
            .field(&self.canonical())
            .finish()
    }

    /// Builds the concrete scenario, or an error for an unknown name.
    pub fn materialize(&self) -> Result<Scenario, String> {
        match self {
            ScenarioSpec::Named { name } => sequences::all_scenarios()
                .into_iter()
                .find(|s| s.name == name)
                .ok_or(format!("unknown scenario name {name:?}")),
            ScenarioSpec::Mix {
                seed,
                params,
                waits,
            } => {
                let mut scenario = sequences::random_mix(*seed, *params);
                if let Some(w) = waits {
                    scenario.waits = *w;
                }
                Ok(scenario)
            }
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Run (or replay from cache) a batch of scenarios.
    Run(Vec<ScenarioSpec>),
    /// Report cache and latency statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain and exit.
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in every response event.
    pub id: String,
    /// The requested operation.
    pub op: Op,
}

/// Parses one request line. The error carries the client id when one
/// could be recovered, so even a malformed request gets a correlated
/// `error` event.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let json = Json::parse(line)
        .map_err(|e| (String::new(), format!("request is not valid JSON: {e}")))?;
    let id = json
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_owned();
    let fail = |msg: String| Err((id.clone(), msg));
    match json.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        Some(v) => {
            return fail(format!(
                "unsupported protocol version {v} (this daemon speaks {PROTOCOL_VERSION})"
            ))
        }
        None => return fail("request missing integer field v".to_owned()),
    }
    match json.get("op").and_then(Json::as_str) {
        Some("run") => {
            let specs = match json.get("scenarios").and_then(Json::as_arr) {
                Some(arr) if !arr.is_empty() => arr,
                Some(_) => return fail("run request has an empty scenarios array".to_owned()),
                None => return fail("run request missing scenarios array".to_owned()),
            };
            let mut parsed = Vec::with_capacity(specs.len());
            for (i, spec) in specs.iter().enumerate() {
                match ScenarioSpec::from_json(spec) {
                    Ok(s) => parsed.push(s),
                    Err(e) => return fail(format!("scenarios[{i}]: {e}")),
                }
            }
            Ok(Request {
                id,
                op: Op::Run(parsed),
            })
        }
        Some("stats") => Ok(Request { id, op: Op::Stats }),
        Some("ping") => Ok(Request { id, op: Op::Ping }),
        Some("shutdown") => Ok(Request {
            id,
            op: Op::Shutdown,
        }),
        Some(other) => fail(format!("unknown op {other:?}")),
        None => fail("request missing string field op".to_owned()),
    }
}

/// Starts a response event: version, correlation id, event name.
pub fn event(id: &str, name: &str) -> Vec<(String, Json)> {
    vec![
        ("v".to_owned(), Json::Num(PROTOCOL_VERSION as f64)),
        ("req".to_owned(), Json::Str(id.to_owned())),
        ("event".to_owned(), Json::Str(name.to_owned())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_roundtrips() {
        let specs = vec![
            ScenarioSpec::Named {
                name: "burst_reads".to_owned(),
            },
            ScenarioSpec::Mix {
                seed: 7,
                params: MixParams {
                    count: 50,
                    ..MixParams::default()
                },
                waits: Some(WaitProfile::new(1, 0, 2)),
            },
        ];
        let line = Json::Obj(vec![
            ("v".to_owned(), Json::Num(1.0)),
            ("id".to_owned(), Json::Str("r1".to_owned())),
            ("op".to_owned(), Json::Str("run".to_owned())),
            (
                "scenarios".to_owned(),
                Json::Arr(specs.iter().map(ScenarioSpec::to_json).collect()),
            ),
        ])
        .to_string_compact();
        let req = parse_request(&line).unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.op, Op::Run(specs));
    }

    #[test]
    fn mix_defaults_fill_in() {
        let req = parse_request(
            r#"{"v":1,"id":"x","op":"run","scenarios":[{"kind":"mix","seed":3,"count":10}]}"#,
        )
        .unwrap();
        let Op::Run(specs) = req.op else {
            panic!("not a run")
        };
        let ScenarioSpec::Mix {
            seed,
            params,
            waits,
        } = &specs[0]
        else {
            panic!("not a mix")
        };
        assert_eq!(*seed, 3);
        assert_eq!(params.count, 10);
        assert_eq!(params.read_pct, MixParams::default().read_pct);
        assert_eq!(*waits, None);
    }

    #[test]
    fn version_and_op_are_enforced() {
        let (id, err) = parse_request(r#"{"v":2,"id":"a","op":"ping"}"#).unwrap_err();
        assert_eq!(id, "a");
        assert!(err.contains("unsupported protocol version"), "{err}");
        let (_, err) = parse_request(r#"{"id":"a","op":"ping"}"#).unwrap_err();
        assert!(err.contains("missing integer field v"), "{err}");
        let (_, err) = parse_request(r#"{"v":1,"id":"a","op":"dance"}"#).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
        let (_, err) = parse_request("not json at all").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
    }

    #[test]
    fn fingerprints_separate_distinct_specs() {
        let named = ScenarioSpec::Named {
            name: "burst_reads".to_owned(),
        };
        let mix = |seed| ScenarioSpec::Mix {
            seed,
            params: MixParams::default(),
            waits: None,
        };
        let db = "0123456789abcdef";
        assert_eq!(named.fingerprint(db), named.fingerprint(db));
        assert_ne!(named.fingerprint(db), mix(0).fingerprint(db));
        assert_ne!(mix(0).fingerprint(db), mix(1).fingerprint(db));
        assert_ne!(mix(0).fingerprint(db), mix(0).fingerprint("another-db00"));
        // The waits override is part of the identity.
        let waited = ScenarioSpec::Mix {
            seed: 0,
            params: MixParams::default(),
            waits: Some(WaitProfile::ZERO),
        };
        assert_ne!(mix(0).fingerprint(db), waited.fingerprint(db));
    }

    #[test]
    fn materialize_finds_named_scenarios_and_rejects_unknown() {
        let ok = ScenarioSpec::Named {
            name: "single_read".to_owned(),
        };
        assert_eq!(ok.materialize().unwrap().name, "single_read");
        let bad = ScenarioSpec::Named {
            name: "no_such_scenario".to_owned(),
        };
        assert!(bad.materialize().is_err());
        let mix = ScenarioSpec::Mix {
            seed: 9,
            params: MixParams {
                count: 25,
                ..MixParams::default()
            },
            waits: Some(WaitProfile::new(2, 1, 0)),
        };
        let scenario = mix.materialize().unwrap();
        assert_eq!(scenario.len(), 25);
        assert_eq!(scenario.waits, WaitProfile::new(2, 1, 0));
    }
}
