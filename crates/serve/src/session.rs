//! The serve-side scenario runner: a reusable lean layer-1 session.
//!
//! The daemon serves `(cycles, energy)` scalars, so it runs the same
//! throughput-mode configuration as the root harness's lean session:
//! no per-transaction records, no per-cycle trace, one energy model
//! reset-reused across scenarios. The root crate's
//! `serve_matches_harness` test pins this runner bit-exact against
//! `harness::run_layer1` — the daemon must never drift from the batch
//! tools it replaces.

use crate::proto::Materialized;
use hierbus_campaign::{CampaignPayload, Fingerprint, Json};
use hierbus_core::{MemSlave, MultiMasterSystem, Tlm1Bus, TlmSystem};
use hierbus_ec::sequences::Scenario;
use hierbus_ec::{AccessRights, Address, AddressRange, MultiScenario, SignalClass, SlaveConfig};
use hierbus_obs::TraceCollector;
use hierbus_power::{BatchedLayer1, CharacterizationDb, Layer1EnergyModel};

/// Cycle ceiling for served scenarios; hitting it is a deadlock bug.
pub const MAX_CYCLES: u64 = 50_000_000;

/// The slave window every served scenario runs against (the harness's
/// standard window).
fn scenario_slave(scenario: &Scenario) -> SlaveConfig {
    SlaveConfig::new(
        AddressRange::new(Address::new(0), 0x2_0000),
        scenario.waits,
        AccessRights::RWX,
    )
}

/// The scalar outcome of one served scenario — the unit the protocol
/// streams and the cache stores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeanResult {
    /// Bus cycles used.
    pub cycles: u64,
    /// Estimated energy in pJ.
    pub energy_pj: f64,
}

impl CampaignPayload for LeanResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".to_owned(), Json::Num(self.cycles as f64)),
            ("energy_pj".to_owned(), Json::Num(self.energy_pj)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(LeanResult {
            cycles: json.get("cycles")?.as_u64()?,
            energy_pj: json.get("energy_pj")?.as_f64()?,
        })
    }
}

/// A reusable layer-1 runner for daemon workers: the energy model is
/// built once per worker and reset between scenarios. Cycles and
/// energy are bit-identical to a fresh `harness::run_layer1` on the
/// same scenario.
#[derive(Debug, Clone)]
pub struct ServeSession {
    engine: BatchedLayer1,
}

impl ServeSession {
    /// Builds a session over a characterization database.
    pub fn new(db: &CharacterizationDb) -> Self {
        hierbus_obs::profiling::record_db_access();
        ServeSession {
            engine: BatchedLayer1::new(Layer1EnergyModel::new(db.clone())),
        }
    }

    /// Runs one scenario in throughput mode through the lane-parallel
    /// batched engine (process-wide backend, `HIERBUS_PACKED_BACKEND`
    /// overridable) — bit-identical to the scalar path, so cached
    /// results stay portable across backends.
    pub fn run(&mut self, scenario: &Scenario) -> LeanResult {
        self.run_single(scenario, false).0
    }

    fn run_single(&mut self, scenario: &Scenario, observe: bool) -> (LeanResult, TraceCollector) {
        self.engine.reset();
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        if observe {
            bus.enable_obs();
        }
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        let engine = &mut self.engine;
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            engine.on_frame(bus.last_frame());
        });
        (
            LeanResult {
                cycles: report.cycles,
                energy_pj: engine.model().total_energy(),
            },
            sys.bus().obs().clone(),
        )
    }

    /// Runs one CPU+DMA workload in the same throughput mode: the
    /// arbiter-merged frame stream through the batched engine, records
    /// off. Cycles and energy are bit-identical to the multi-master
    /// harness's layer-1 run of the same workload.
    pub fn run_multi(&mut self, ms: &MultiScenario) -> LeanResult {
        self.run_multi_inner(ms, false).0
    }

    fn run_multi_inner(
        &mut self,
        ms: &MultiScenario,
        observe: bool,
    ) -> (LeanResult, TraceCollector) {
        self.engine.reset();
        let mem = MemSlave::new(scenario_slave(&ms.cpu));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        if observe {
            bus.enable_obs();
        }
        let mut sys = MultiMasterSystem::for_multi(bus, ms);
        sys.disable_records();
        let engine = &mut self.engine;
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            engine.on_frame(bus.last_frame());
        });
        (
            LeanResult {
                cycles: report.cycles,
                energy_pj: engine.model().total_energy(),
            },
            sys.bus().obs().clone(),
        )
    }

    /// Runs either shape of materialized workload.
    pub fn run_materialized(&mut self, m: &Materialized) -> LeanResult {
        match m {
            Materialized::Single(s) => self.run(s),
            Materialized::Multi(ms) => self.run_multi(ms),
        }
    }

    /// Like [`run_materialized`](Self::run_materialized) but with the
    /// bus span collector enabled, returning the model-layer phase
    /// spans alongside the result. Span collection is observational —
    /// cycles and energy are bit-identical to the unobserved run (the
    /// daemon's tracing tests pin this), so traced results are safe to
    /// cache and replay interchangeably with untraced ones.
    pub fn run_observed(&mut self, m: &Materialized) -> (LeanResult, TraceCollector) {
        match m {
            Materialized::Single(s) => self.run_single(s, true),
            Materialized::Multi(ms) => self.run_multi_inner(ms, true),
        }
    }
}

/// A bit-exact fingerprint of a characterization database: the raw
/// IEEE-754 bits of every per-class energy weight and per-phase
/// average. Cache keys include it, so a persisted cache index built
/// against one characterization is never replayed against another.
pub fn db_fingerprint(db: &CharacterizationDb) -> String {
    let mut fp = Fingerprint::new();
    for class in SignalClass::ALL {
        fp.eat_f64(db.energy_per_toggle(class));
    }
    fp.eat_f64(db.avg_addr_bus_toggles());
    fp.eat_f64(db.avg_addr_ctl_toggles());
    let (data, ctl) = db.avg_read_beat_toggles();
    fp.eat_f64(data);
    fp.eat_f64(ctl);
    let (data, ctl) = db.avg_write_beat_toggles();
    fp.eat_f64(data);
    fp.eat_f64(ctl);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::sequences;

    #[test]
    fn session_reuse_is_deterministic() {
        let db = CharacterizationDb::uniform();
        let scenarios = sequences::all_scenarios();
        let mut session = ServeSession::new(&db);
        let first: Vec<LeanResult> = scenarios.iter().map(|s| session.run(s)).collect();
        let second: Vec<LeanResult> = scenarios.iter().map(|s| session.run(s)).collect();
        assert_eq!(first, second);
        // A fresh session agrees with a reused one.
        let fresh: Vec<LeanResult> = scenarios
            .iter()
            .map(|s| ServeSession::new(&db).run(s))
            .collect();
        assert_eq!(first, fresh);
    }

    #[test]
    fn observed_runs_are_bit_identical_and_collect_spans() {
        let db = CharacterizationDb::uniform();
        let mut session = ServeSession::new(&db);
        for scenario in sequences::all_scenarios().iter().take(3) {
            let plain = session.run(scenario);
            let (observed, collector) =
                session.run_observed(&Materialized::Single(scenario.clone()));
            assert_eq!(
                plain, observed,
                "{}: observation changed the result",
                scenario.name
            );
            assert!(collector.span_count() > 0, "{}: no spans", scenario.name);
            assert_eq!(
                collector.open_count(),
                0,
                "{}: dangling spans",
                scenario.name
            );
        }
        // The unobserved path keeps its collector disabled (no buffers).
        let (_, collector) = session.run_single(&sequences::all_scenarios()[0], false);
        assert_eq!(collector.span_count(), 0);
    }

    #[test]
    fn lean_result_roundtrips_json() {
        let r = LeanResult {
            cycles: 12_345,
            energy_pj: 6789.0625,
        };
        let back = LeanResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn db_fingerprint_tracks_the_characterization() {
        let uniform = db_fingerprint(&CharacterizationDb::uniform());
        assert_eq!(uniform, db_fingerprint(&CharacterizationDb::uniform()));
        assert_eq!(uniform.len(), 16);
        let other = CharacterizationDb::from_class_stats(
            &[(SignalClass::AddrBus, 10.0, 7)],
            hierbus_power::PhaseCounts {
                addr_phases: 7,
                read_beats: 1,
                write_beats: 1,
            },
        );
        assert_ne!(uniform, db_fingerprint(&other));
    }
}
