//! The content-addressed result cache.
//!
//! Values are the *exact* compact-JSON bytes of a scenario's result,
//! keyed by the scenario fingerprint
//! ([`ScenarioSpec::fingerprint`](crate::proto::ScenarioSpec::fingerprint)).
//! A hit replays those bytes verbatim, so a cached response is
//! byte-identical to the fresh run that populated it. Capacity is
//! bounded with least-recently-used eviction, and every lookup is
//! counted (hits, misses, evictions) — the daemon mirrors the counts
//! into its [`hierbus_obs::MetricsRegistry`].
//!
//! The cache can persist itself as a versioned JSON index (atomic
//! temp-file + rename, like the campaign manifest). An index records
//! the database fingerprint it was built against; loading under a
//! different characterization (or index version) starts empty instead
//! of replaying stale energies.

use hierbus_campaign::Json;
use std::io;
use std::path::Path;

/// Version of the persisted index format; bumped on layout changes so
/// an old index is discarded, never misread.
pub const CACHE_INDEX_VERSION: u64 = 1;

/// A bounded LRU map from scenario fingerprint to serialized result.
#[derive(Debug, Clone)]
pub struct ResultCache {
    capacity: usize,
    /// Entries oldest-first; a lookup moves its entry to the back.
    entries: Vec<(String, String)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a fingerprint, counting the hit or miss and refreshing
    /// the entry's recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<String> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.remove(i);
                let value = entry.1.clone();
                self.entries.push(entry);
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry as most recently used, evicting
    /// the least recently used entry if the cache is full.
    pub fn insert(&mut self, key: &str, value: String) {
        if let Some(i) = self.entries.iter().position(|(k, _)| k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key.to_owned(), value));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
    }

    /// The persisted form: version, database fingerprint, entries in
    /// LRU order (oldest first, so a load replays recency exactly).
    pub fn to_json(&self, db_fingerprint: &str) -> Json {
        Json::Obj(vec![
            ("version".to_owned(), Json::Num(CACHE_INDEX_VERSION as f64)),
            ("db".to_owned(), Json::Str(db_fingerprint.to_owned())),
            (
                "entries".to_owned(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|(k, v)| {
                            Json::Obj(vec![
                                ("key".to_owned(), Json::Str(k.clone())),
                                ("result".to_owned(), Json::parse(v).unwrap_or(Json::Null)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a cache from a persisted index; `None` when the index
    /// version or the database fingerprint does not match.
    pub fn from_json(json: &Json, capacity: usize, db_fingerprint: &str) -> Option<Self> {
        if json.get("version")?.as_u64()? != CACHE_INDEX_VERSION {
            return None;
        }
        if json.get("db")?.as_str()? != db_fingerprint {
            return None;
        }
        let mut cache = ResultCache::new(capacity);
        for entry in json.get("entries")?.as_arr()? {
            let key = entry.get("key")?.as_str()?;
            let result = entry.get("result")?;
            if matches!(result, Json::Null) {
                continue;
            }
            cache.insert(key, result.to_string_compact());
        }
        cache.evictions = 0;
        Some(cache)
    }

    /// Writes the index atomically (temp file + rename), creating
    /// parent directories as needed.
    pub fn save(&self, path: &Path, db_fingerprint: &str) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json(db_fingerprint).to_string_pretty())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads an index if one exists and matches; `Ok(None)` for a
    /// missing file, an unparsable index, or a version/database
    /// mismatch — all of which mean "start empty", not "fail".
    pub fn load(path: &Path, capacity: usize, db_fingerprint: &str) -> io::Result<Option<Self>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Ok(Json::parse(&text)
            .ok()
            .and_then(|json| ResultCache::from_json(&json, capacity, db_fingerprint)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(n: u64) -> String {
        Json::Obj(vec![("cycles".to_owned(), Json::Num(n as f64))]).to_string_compact()
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get("a"), None);
        c.insert("a", value(1));
        assert_eq!(c.get("a"), Some(value(1)));
        assert_eq!(c.get("b"), None);
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = ResultCache::new(2);
        c.insert("a", value(1));
        c.insert("b", value(2));
        // Touch "a" so "b" is the LRU entry.
        assert!(c.get("a").is_some());
        c.insert("c", value(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get("b").is_none(), "LRU entry should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut c = ResultCache::new(2);
        c.insert("a", value(1));
        c.insert("b", value(2));
        c.insert("a", value(9));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get("a"), Some(value(9)));
        // "b" became LRU; the next insert evicts it, not "a".
        c.insert("c", value(3));
        assert!(c.get("b").is_none());
    }

    #[test]
    fn index_roundtrips_bytes_and_recency() {
        let mut c = ResultCache::new(3);
        c.insert("a", value(1));
        c.insert("b", value(2));
        c.insert("c", value(3));
        assert!(c.get("a").is_some()); // recency order now b, c, a
        let json = c.to_json("db-fp");
        let mut back = ResultCache::from_json(&json, 3, "db-fp").unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("b"), Some(value(2)));
        // Recency survived: after touching "b", LRU is "c".
        back.insert("d", value(4));
        assert!(back.get("c").is_none());
        assert_eq!(back.get("a"), Some(value(1)));
    }

    #[test]
    fn index_rejects_version_and_db_mismatch() {
        let mut c = ResultCache::new(2);
        c.insert("a", value(1));
        let json = c.to_json("db-fp");
        assert!(ResultCache::from_json(&json, 2, "other-db").is_none());
        let mut wrong = json.clone();
        wrong.set("version", Json::Num(99.0));
        assert!(ResultCache::from_json(&wrong, 2, "db-fp").is_none());
    }

    #[test]
    fn save_and_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("hierbus_serve_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("cache.index.json");
        let mut c = ResultCache::new(8);
        c.insert("a", value(1));
        c.save(&path, "db-fp").unwrap();
        let mut back = ResultCache::load(&path, 8, "db-fp").unwrap().unwrap();
        assert_eq!(back.get("a"), Some(value(1)));
        assert!(ResultCache::load(&path, 8, "other").unwrap().is_none());
        assert!(ResultCache::load(&dir.join("missing.json"), 8, "db-fp")
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
