//! Request-scoped tracing: one connected Perfetto trace per protocol
//! request.
//!
//! [`TraceBuilder`] assembles the three track groups of a request's
//! trace — the daemon track (queued → cache-check → execute →
//! serialize, µs timebase), one track per worker thread that executed
//! a miss (µs timebase, spans from the campaign pool's
//! [`SinkScope`]), and the model-layer phase spans of the first few
//! executed scenarios (cycle timebase, straight from the bus
//! [`TraceCollector`]). Every span's `args` carry the request's trace
//! id, so the whole request reads as one connected story in
//! [ui.perfetto.dev](https://ui.perfetto.dev) and tooling can verify
//! daemon-side and model-layer spans belong to the same request.
//!
//! Finished traces land in a bounded [`TraceRing`]; the `dump-trace`
//! protocol op writes the ring to the daemon's `--trace-dir`.
//!
//! [`SinkScope`]: hierbus_campaign::SinkScope

use hierbus_obs::perfetto::{escape, TraceEvents};
use hierbus_obs::{Phase, TraceCollector};
use std::collections::VecDeque;

/// Perfetto `pid` of the daemon request track.
pub const DAEMON_PID: u32 = 1;
/// Perfetto `pid` of the worker-pool track group.
pub const WORKER_PID: u32 = 2;
/// First Perfetto `pid` of the model-layer track groups (one per
/// captured scenario).
pub const LAYER_PID_BASE: u32 = 3;

/// Executed scenarios per request whose model-layer spans are captured
/// — a cap, because layer spans are per-bus-phase and a thousand-
/// scenario batch would swamp the trace.
pub const LAYER_SPAN_CAP: usize = 4;

fn phase_tid(phase: Phase) -> u32 {
    match phase {
        Phase::Request => 1,
        Phase::Address => 2,
        Phase::ReadData => 3,
        Phase::WriteData => 4,
    }
}

/// One finished request trace, ready to dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The client's request id.
    pub request_id: String,
    /// The daemon-assigned trace id (`t1`, `t2`, ...).
    pub trace_id: String,
    /// The complete trace-event JSON document.
    pub json: String,
}

/// Builds one request's trace-event document.
#[derive(Debug)]
pub struct TraceBuilder {
    request_id: String,
    trace_id: String,
    events: TraceEvents,
    named_workers: Vec<usize>,
    layer_slots: u32,
}

impl TraceBuilder {
    /// Starts a trace for one request. Track-group metadata for the
    /// daemon and worker groups is emitted up front; layer groups
    /// appear as scenarios are added.
    pub fn new(request_id: &str, trace_id: &str) -> Self {
        let mut events = TraceEvents::new();
        events.meta_process(DAEMON_PID, &format!("hierbus-serve request {request_id}"));
        events.meta_thread(DAEMON_PID, 1, "daemon");
        events.meta_process(WORKER_PID, "workers (µs)");
        TraceBuilder {
            request_id: request_id.to_owned(),
            trace_id: trace_id.to_owned(),
            events,
            named_workers: Vec::new(),
            layer_slots: 0,
        }
    }

    fn base_args(&self) -> String {
        format!(
            r#""trace":"{}","req":"{}""#,
            escape(&self.trace_id),
            escape(&self.request_id)
        )
    }

    /// A span on the daemon track (µs since the request was enqueued):
    /// `queued`, `cache-check`, `execute`, `serialize`.
    pub fn daemon_span(&mut self, name: &str, ts_us: u64, dur_us: u64) {
        let args = format!("{{{}}}", self.base_args());
        self.events.complete(
            DAEMON_PID,
            1,
            name,
            "serve",
            &ts_us.to_string(),
            &dur_us.to_string(),
            &args,
        );
    }

    /// One executed scenario on its worker's track (µs since the
    /// request was enqueued, straight from the campaign sink scope).
    pub fn worker_span(
        &mut self,
        worker: usize,
        scenario_index: usize,
        key: &str,
        started_us: u64,
        finished_us: u64,
    ) {
        if !self.named_workers.contains(&worker) {
            self.events
                .meta_thread(WORKER_PID, worker as u32 + 1, &format!("worker {worker}"));
            self.named_workers.push(worker);
        }
        let args = format!(r#"{{{},"key":"{}"}}"#, self.base_args(), escape(key));
        self.events.complete(
            WORKER_PID,
            worker as u32 + 1,
            &format!("scenario #{scenario_index}"),
            "serve",
            &started_us.to_string(),
            &finished_us.saturating_sub(started_us).to_string(),
            &args,
        );
    }

    /// The model-layer phase spans of one executed scenario, on its own
    /// track group. The timebase is bus cycles (as in
    /// [`hierbus_obs::perfetto::export`]), kept on a separate `pid` so
    /// the viewer doesn't mix cycle and µs axes; the shared trace id in
    /// `args` is the connection.
    pub fn layer_spans(&mut self, scenario_index: usize, collector: &TraceCollector) {
        let pid = LAYER_PID_BASE + self.layer_slots;
        self.layer_slots += 1;
        self.events.meta_process(
            pid,
            &format!("scenario #{scenario_index} {} (cycles)", collector.layer()),
        );
        for phase in Phase::ALL {
            self.events.meta_thread(pid, phase_tid(phase), phase.name());
        }
        for s in collector.spans() {
            let args = format!(
                r#"{{{},"txn":{},"addr":"0x{:x}","error":{}}}"#,
                self.base_args(),
                s.trace_id,
                s.addr,
                s.error
            );
            self.events.complete(
                pid,
                phase_tid(s.phase),
                &format!("{} {} #{}", s.class.name(), s.phase.name(), s.trace_id),
                "bus",
                &s.begin.to_string(),
                &s.duration().to_string(),
                &args,
            );
        }
    }

    /// Layer track groups added so far.
    pub fn layer_count(&self) -> u32 {
        self.layer_slots
    }

    /// Seals the document.
    pub fn finish(self) -> RequestTrace {
        RequestTrace {
            request_id: self.request_id,
            trace_id: self.trace_id,
            json: self.events.finish(),
        }
    }
}

/// Bounded ring of the most recent request traces.
#[derive(Debug, Default)]
pub struct TraceRing {
    capacity: usize,
    traces: VecDeque<RequestTrace>,
}

impl TraceRing {
    /// A ring retaining the last `capacity` request traces; capacity 0
    /// disables request tracing entirely.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            traces: VecDeque::new(),
        }
    }

    /// True when tracing is off (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Retains `trace`, evicting the oldest when full; no-op when
    /// disabled.
    pub fn push(&mut self, trace: RequestTrace) {
        if self.capacity == 0 {
            return;
        }
        if self.traces.len() == self.capacity {
            self.traces.pop_front();
        }
        self.traces.push_back(trace);
    }

    /// Retained traces, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RequestTrace> {
        self.traces.iter()
    }

    pub fn len(&self) -> usize {
        self.traces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_obs::AccessClass;

    fn sample_collector() -> TraceCollector {
        let mut c = TraceCollector::for_layer("tlm1");
        c.begin(1, Phase::Address, 0, 0x100, AccessClass::Read);
        c.end(1, Phase::Address, 2, false);
        c.begin(1, Phase::ReadData, 3, 0x100, AccessClass::Read);
        c.end(1, Phase::ReadData, 4, false);
        c
    }

    #[test]
    fn trace_connects_daemon_worker_and_layer_spans_by_trace_id() {
        let mut b = TraceBuilder::new("r1", "t7");
        b.daemon_span("queued", 0, 120);
        b.daemon_span("cache-check", 120, 30);
        b.daemon_span("execute", 150, 900);
        b.daemon_span("serialize", 1050, 10);
        b.worker_span(0, 2, "deadbeef", 200, 800);
        b.layer_spans(2, &sample_collector());
        let trace = b.finish();
        assert_eq!(trace.trace_id, "t7");
        // Every span — daemon, worker, layer — carries the trace id.
        let tagged = trace.json.matches(r#""trace":"t7""#).count();
        assert_eq!(tagged, 4 + 1 + 2, "{}", trace.json);
        // The three track groups are present and named.
        assert!(trace.json.contains(r#""pid":1,"name":"process_name""#));
        assert!(trace.json.contains(r#""name":"worker 0""#));
        assert!(trace.json.contains("scenario #2 tlm1 (cycles)"));
        // Daemon phases in order, layer spans in cycle timebase.
        for name in ["queued", "cache-check", "execute", "serialize"] {
            assert!(
                trace.json.contains(&format!(r#""name":"{name}""#)),
                "{name}"
            );
        }
        assert!(trace.json.contains(r#""name":"read address #1""#));
        assert!(trace.json.contains(r#""name":"read read-data #1""#));
    }

    #[test]
    fn worker_tracks_are_named_once() {
        let mut b = TraceBuilder::new("r", "t1");
        b.worker_span(1, 0, "k0", 0, 5);
        b.worker_span(1, 3, "k3", 5, 9);
        let json = b.finish().json;
        assert_eq!(json.matches(r#""name":"worker 1""#).count(), 1);
        assert_eq!(json.matches(r#""name":"scenario #"#).count(), 2);
    }

    #[test]
    fn builder_escapes_client_controlled_ids() {
        let mut b = TraceBuilder::new("r\"1", "t1");
        b.daemon_span("queued", 0, 1);
        let json = b.finish().json;
        assert!(json.contains(r#""req":"r\"1""#), "{json}");
    }

    #[test]
    fn ring_bounds_retention_and_zero_capacity_disables() {
        let trace = |i: u64| RequestTrace {
            request_id: format!("r{i}"),
            trace_id: format!("t{i}"),
            json: String::new(),
        };
        let mut ring = TraceRing::new(2);
        assert!(!ring.is_disabled());
        for i in 0..3 {
            ring.push(trace(i));
        }
        let ids: Vec<&str> = ring.iter().map(|t| t.trace_id.as_str()).collect();
        assert_eq!(ids, ["t1", "t2"]);
        let mut off = TraceRing::new(0);
        assert!(off.is_disabled());
        off.push(trace(0));
        assert!(off.is_empty());
    }
}
