//! Campaign-as-a-service: a resident estimation daemon.
//!
//! Every batch invocation of the experiment binaries pays full startup
//! and characterization cost before the first scenario runs. This
//! crate keeps the estimation engine resident instead — the
//! [`Daemon`] loads a [`CharacterizationDb`] once, accepts estimation
//! requests over a line-delimited JSON protocol ([`proto`]), batches
//! them onto the campaign worker pool
//! ([`hierbus_campaign::run_with_sink`]) and streams results back as
//! scenarios complete.
//!
//! Resubmitted scenarios never touch a worker: every scenario
//! specification has a content fingerprint
//! ([`proto::ScenarioSpec::canonical`] hashed together with the
//! protocol version and the database fingerprint), and a bounded LRU
//! [`ResultCache`] replays the exact serialized result bytes of the
//! first execution. Hit/miss/eviction counters and per-request latency
//! histograms are exported through
//! [`hierbus_obs::MetricsRegistry`].
//!
//! The daemon shuts down gracefully: a `shutdown` request (or input
//! EOF) lets the in-flight request finish, answers still-queued
//! requests with a retryable status, flushes the cache index and says
//! goodbye. See `DESIGN.md` §5j for the architecture and
//! `examples/serve_client.rs` for an executable protocol walkthrough.
//!
//! [`CharacterizationDb`]: hierbus_power::CharacterizationDb

pub mod cache;
pub mod daemon;
pub mod proto;
pub mod session;
pub mod telemetry;

pub use cache::{ResultCache, CACHE_INDEX_VERSION};
pub use daemon::{Daemon, DaemonOptions, ServeSummary, DEFAULT_CACHE_CAPACITY};
pub use proto::{
    parse_request, Materialized, Op, Request, ScenarioSpec, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
    RESULT_FORMAT_VERSION,
};
pub use session::{db_fingerprint, LeanResult, ServeSession};
pub use telemetry::{RequestTrace, TraceBuilder, TraceRing, LAYER_SPAN_CAP};
