//! The bytecode interpreter.
//!
//! Functional and untimed, exactly like the paper's model: its only
//! connection to simulated time is the operand stack it is handed — a
//! [`SoftStack`](crate::stack::SoftStack) costs nothing, a
//! [`BusStack`](crate::adapter::BusStack) turns every push/pop into bus
//! transactions.

use crate::bytecode::{Bytecode, Method, MethodId};
use crate::error::JcvmError;
use crate::firewall::Firewall;
use crate::memory::MemoryManager;
use crate::stack::OperandStack;

#[derive(Debug)]
struct Frame {
    method: usize,
    pc: usize,
    locals: Vec<i32>,
}

/// The VM: method table, memory manager, firewall.
#[derive(Debug, Default)]
pub struct Interpreter {
    methods: Vec<Method>,
    /// Static fields and arrays.
    pub memory: MemoryManager,
    /// The applet firewall.
    pub firewall: Firewall,
    steps: u64,
    /// Per-mnemonic dispatch counts, present once profiling is enabled
    /// (`None` costs one branch per bytecode).
    dispatch: Option<std::collections::BTreeMap<&'static str, u64>>,
}

impl Interpreter {
    /// Creates an empty VM.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Installs a method; returns its id.
    ///
    /// # Panics
    ///
    /// Panics once the 256-entry method table is full.
    pub fn add_method(&mut self, method: Method) -> MethodId {
        let id = self.methods.len();
        assert!(id < 256, "method table full");
        self.methods.push(method);
        MethodId(id as u8)
    }

    /// Bytecodes executed so far (across runs).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Starts counting dispatches per mnemonic (across runs).
    pub fn enable_dispatch_profile(&mut self) {
        self.dispatch
            .get_or_insert_with(std::collections::BTreeMap::new);
    }

    /// The per-mnemonic dispatch counts, if profiling is enabled.
    pub fn dispatch_counts(&self) -> Option<&std::collections::BTreeMap<&'static str, u64>> {
        self.dispatch.as_ref()
    }

    /// Copies the dispatch counts into `reg` as
    /// `jcvm.dispatch.<mnemonic>` counters (plus the
    /// `jcvm.steps` total; no-op when profiling is off).
    pub fn export_metrics(&self, reg: &mut hierbus_obs::MetricsRegistry) {
        let c = reg.counter("jcvm.steps");
        reg.add(c, self.steps);
        if let Some(counts) = &self.dispatch {
            for (mnemonic, n) in counts {
                let c = reg.counter(&format!("jcvm.dispatch.{mnemonic}"));
                reg.add(c, *n);
            }
        }
    }

    /// Runs `entry` with `args` as its first locals, using `stack` as
    /// the operand stack. Returns the value of a terminating `ireturn`,
    /// or `None` for `return`.
    ///
    /// # Errors
    ///
    /// Any [`JcvmError`] raised by execution, including
    /// [`JcvmError::Timeout`] after `max_steps` bytecodes.
    pub fn run<S: OperandStack>(
        &mut self,
        entry: MethodId,
        args: &[i32],
        stack: &mut S,
        max_steps: u64,
    ) -> Result<Option<i32>, JcvmError> {
        let m = self
            .methods
            .get(entry.0 as usize)
            .ok_or(JcvmError::NoSuchMethod(entry.0))?;
        assert_eq!(
            args.len(),
            m.n_args as usize,
            "entry arguments must match the method signature"
        );
        let mut locals = vec![0i32; m.n_locals as usize];
        locals[..args.len()].copy_from_slice(args);
        let mut frames = vec![Frame {
            method: entry.0 as usize,
            pc: 0,
            locals,
        }];
        let mut budget = max_steps;

        loop {
            if budget == 0 {
                return Err(JcvmError::Timeout);
            }
            budget -= 1;
            self.steps += 1;

            if let Some(counts) = &mut self.dispatch {
                if let Some(frame) = frames.last() {
                    if let Some(op) = self.methods[frame.method].code.get(frame.pc) {
                        *counts.entry(op.mnemonic()).or_insert(0) += 1;
                    }
                }
            }

            let frame = frames.last_mut().expect("a frame is always active");
            let method = &self.methods[frame.method];
            let Some(&op) = method.code.get(frame.pc) else {
                // Falling off the end acts as a void return.
                frames.pop();
                if frames.is_empty() {
                    return Ok(None);
                }
                continue;
            };
            let ctx = method.context;
            let code_len = method.code.len();
            frame.pc += 1;

            macro_rules! branch {
                ($target:expr, $cond:expr) => {{
                    if $cond {
                        let t = $target as usize;
                        if t >= code_len {
                            return Err(JcvmError::BadBranch);
                        }
                        frame.pc = t;
                    }
                }};
            }
            macro_rules! binop {
                ($f:expr) => {{
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    #[allow(clippy::redundant_closure_call)]
                    stack.push($f(a, b))?;
                }};
            }

            match op {
                Bytecode::Nop => {}
                Bytecode::Const(v) => stack.push(v)?,
                Bytecode::Iadd => binop!(|a: i32, b: i32| a.wrapping_add(b)),
                Bytecode::Isub => binop!(|a: i32, b: i32| a.wrapping_sub(b)),
                Bytecode::Imul => binop!(|a: i32, b: i32| a.wrapping_mul(b)),
                Bytecode::Iand => binop!(|a, b| a & b),
                Bytecode::Ior => binop!(|a, b| a | b),
                Bytecode::Ixor => binop!(|a, b| a ^ b),
                Bytecode::Ishl => binop!(|a: i32, b: i32| a.wrapping_shl(b as u32 & 31)),
                Bytecode::Ishr => binop!(|a: i32, b: i32| a.wrapping_shr(b as u32 & 31)),
                Bytecode::Ineg => {
                    let v = stack.pop()?;
                    stack.push(v.wrapping_neg())?;
                }
                Bytecode::Dup => {
                    let v = stack.peek()?;
                    stack.push(v)?;
                }
                Bytecode::Pop => {
                    stack.pop()?;
                }
                Bytecode::Swap => {
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    stack.push(b)?;
                    stack.push(a)?;
                }
                Bytecode::Iload(n) => {
                    let v = *frame.locals.get(n as usize).ok_or(JcvmError::BadLocal(n))?;
                    stack.push(v)?;
                }
                Bytecode::Istore(n) => {
                    let v = stack.pop()?;
                    *frame
                        .locals
                        .get_mut(n as usize)
                        .ok_or(JcvmError::BadLocal(n))? = v;
                }
                Bytecode::Iinc(n, delta) => {
                    let slot = frame
                        .locals
                        .get_mut(n as usize)
                        .ok_or(JcvmError::BadLocal(n))?;
                    *slot = slot.wrapping_add(delta as i32);
                }
                Bytecode::IfEq(t) => branch!(t, stack.pop()? == 0),
                Bytecode::IfNe(t) => branch!(t, stack.pop()? != 0),
                Bytecode::IfLt(t) => branch!(t, stack.pop()? < 0),
                Bytecode::IfGe(t) => branch!(t, stack.pop()? >= 0),
                Bytecode::IfIcmpEq(t) => {
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    branch!(t, a == b);
                }
                Bytecode::IfIcmpNe(t) => {
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    branch!(t, a != b);
                }
                Bytecode::IfIcmpLt(t) => {
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    branch!(t, a < b);
                }
                Bytecode::IfIcmpGe(t) => {
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    branch!(t, a >= b);
                }
                Bytecode::Goto(t) => branch!(t, true),
                Bytecode::Invokestatic(id) => {
                    let callee = self
                        .methods
                        .get(id.0 as usize)
                        .ok_or(JcvmError::NoSuchMethod(id.0))?;
                    self.firewall
                        .check(ctx, callee.context, callee.entry_point)?;
                    let mut locals = vec![0i32; callee.n_locals as usize];
                    // Arguments pop in reverse order (last pushed is the
                    // last argument); pop_many lets a bus-attached stack
                    // fetch them as one burst.
                    let n_args = callee.n_args as usize;
                    let popped = stack.pop_many(n_args)?;
                    for (k, v) in popped.into_iter().enumerate() {
                        locals[n_args - 1 - k] = v;
                    }
                    let method = id.0 as usize;
                    frames.push(Frame {
                        method,
                        pc: 0,
                        locals,
                    });
                }
                Bytecode::Return => {
                    frames.pop();
                    if frames.is_empty() {
                        return Ok(None);
                    }
                }
                Bytecode::Ireturn => {
                    let v = stack.pop()?;
                    frames.pop();
                    if frames.is_empty() {
                        return Ok(Some(v));
                    }
                    stack.push(v)?;
                }
                Bytecode::Getstatic(i) => {
                    let v = self.memory.get_static(&mut self.firewall, ctx, i)?;
                    stack.push(v)?;
                }
                Bytecode::Putstatic(i) => {
                    let v = stack.pop()?;
                    self.memory.put_static(&mut self.firewall, ctx, i, v)?;
                }
                Bytecode::ArrayLoad => {
                    let index = stack.pop()?;
                    let handle = stack.pop()?;
                    let v = self
                        .memory
                        .array_load(&mut self.firewall, ctx, handle, index)?;
                    stack.push(v)?;
                }
                Bytecode::ArrayStore => {
                    let value = stack.pop()?;
                    let index = stack.pop()?;
                    let handle = stack.pop()?;
                    self.memory
                        .array_store(&mut self.firewall, ctx, handle, index, value)?;
                }
                Bytecode::ArrayLength => {
                    let handle = stack.pop()?;
                    stack.push(self.memory.array_length(handle)?)?;
                }
                Bytecode::NewArray => {
                    let len = stack.pop()?;
                    let handle = self.memory.new_array(ctx, len)?;
                    stack.push(handle)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::Context;
    use crate::stack::SoftStack;
    use Bytecode::*;

    fn run_main(code: Vec<Bytecode>, n_locals: u8) -> Result<Option<i32>, JcvmError> {
        let mut vm = Interpreter::new();
        let main = vm.add_method(Method::new(code, 0, n_locals));
        let mut stack = SoftStack::new(64);
        vm.run(main, &[], &mut stack, 100_000)
    }

    #[test]
    fn arithmetic_and_return() {
        let r = run_main(vec![Const(6), Const(7), Imul, Ireturn], 0);
        assert_eq!(r, Ok(Some(42)));
    }

    #[test]
    fn dispatch_profile_counts_mnemonics() {
        let mut vm = Interpreter::new();
        vm.enable_dispatch_profile();
        let main = vm.add_method(Method::new(vec![Const(6), Const(7), Imul, Ireturn], 0, 0));
        let mut stack = SoftStack::new(16);
        assert_eq!(vm.run(main, &[], &mut stack, 1_000), Ok(Some(42)));
        let counts = vm.dispatch_counts().expect("profiling enabled");
        assert_eq!(counts.get("const"), Some(&2));
        assert_eq!(counts.get("imul"), Some(&1));
        assert_eq!(counts.get("ireturn"), Some(&1));
        assert_eq!(counts.values().sum::<u64>(), vm.steps());

        let mut reg = hierbus_obs::MetricsRegistry::new();
        vm.export_metrics(&mut reg);
        let c = reg.counter("jcvm.dispatch.const");
        assert_eq!(reg.counter_value(c), 2);
        let c = reg.counter("jcvm.steps");
        assert_eq!(reg.counter_value(c), 4);
    }

    #[test]
    fn locals_and_loop_sum() {
        // locals: 0 = i (10..0), 1 = acc; sum 1..=10 = 55.
        let code = vec![
            Const(10),
            Istore(0),
            Const(0),
            Istore(1),
            // loop @4:
            Iload(1),
            Iload(0),
            Iadd,
            Istore(1),
            Iinc(0, -1),
            Iload(0),
            IfNe(4),
            Iload(1),
            Ireturn,
        ];
        assert_eq!(run_main(code, 2), Ok(Some(55)));
    }

    #[test]
    fn static_method_call_with_args() {
        let mut vm = Interpreter::new();
        // add(a, b) = a + b
        let add = vm.add_method(Method::new(vec![Iload(0), Iload(1), Iadd, Ireturn], 2, 2));
        let main = vm.add_method(Method::new(
            vec![Const(30), Const(12), Invokestatic(add), Ireturn],
            0,
            0,
        ));
        let mut stack = SoftStack::new(64);
        assert_eq!(vm.run(main, &[], &mut stack, 1_000), Ok(Some(42)));
    }

    #[test]
    fn recursion_fib() {
        let mut vm = Interpreter::new();
        // fib(n): n < 2 ? n : fib(n-1) + fib(n-2)
        let fib_id = MethodId(0);
        let code = vec![
            Iload(0),
            Const(2),
            IfIcmpLt(10),
            Iload(0),
            Const(1),
            Isub,
            Invokestatic(fib_id),
            Iload(0),
            Const(2),
            Isub,
            // @10: base case (jumped with n still wanted) — layout below
            Ireturn, // placeholder replaced
        ];
        // Easier to write explicitly:
        let code = {
            let _ = code;
            vec![
                Iload(0),
                Const(2),
                IfIcmpGe(5), // if n >= 2 goto recurse
                Iload(0),
                Ireturn,
                // recurse @5:
                Iload(0),
                Const(1),
                Isub,
                Invokestatic(fib_id),
                Iload(0),
                Const(2),
                Isub,
                Invokestatic(fib_id),
                Iadd,
                Ireturn,
            ]
        };
        let id = vm.add_method(Method::new(code, 1, 1));
        assert_eq!(id, fib_id);
        let mut stack = SoftStack::new(256);
        assert_eq!(vm.run(fib_id, &[10], &mut stack, 1_000_000), Ok(Some(55)));
    }

    #[test]
    fn firewall_blocks_cross_context_calls() {
        let mut vm = Interpreter::new();
        let secret =
            vm.add_method(Method::new(vec![Const(1), Ireturn], 0, 0).in_context(Context(2)));
        let shared = vm.add_method(
            Method::new(vec![Const(2), Ireturn], 0, 0)
                .in_context(Context(2))
                .shared(),
        );
        let main = vm.add_method(
            Method::new(vec![Invokestatic(secret), Ireturn], 0, 0).in_context(Context(1)),
        );
        let main2 = vm.add_method(
            Method::new(vec![Invokestatic(shared), Ireturn], 0, 0).in_context(Context(1)),
        );
        let mut stack = SoftStack::new(64);
        assert_eq!(
            vm.run(main, &[], &mut stack, 1_000),
            Err(JcvmError::SecurityViolation)
        );
        let mut stack = SoftStack::new(64);
        assert_eq!(vm.run(main2, &[], &mut stack, 1_000), Ok(Some(2)));
    }

    #[test]
    fn arrays_work_through_bytecodes() {
        let code = vec![
            Const(4),
            NewArray,
            Istore(0),
            Iload(0),
            Const(2),
            Const(99),
            ArrayStore,
            Iload(0),
            Const(2),
            ArrayLoad,
            Iload(0),
            ArrayLength,
            Iadd,
            Ireturn,
        ];
        assert_eq!(run_main(code, 1), Ok(Some(103)));
    }

    #[test]
    fn statics_roundtrip() {
        let mut vm = Interpreter::new();
        let field = vm.memory.add_static(5, Context(0), false);
        let main = vm.add_method(Method::new(
            vec![
                Getstatic(field),
                Const(1),
                Iadd,
                Putstatic(field),
                Getstatic(field),
                Ireturn,
            ],
            0,
            0,
        ));
        let mut stack = SoftStack::new(8);
        assert_eq!(vm.run(main, &[], &mut stack, 1_000), Ok(Some(6)));
    }

    #[test]
    fn runaway_hits_timeout() {
        let r = run_main(vec![Goto(0)], 0);
        assert_eq!(r, Err(JcvmError::Timeout));
    }

    #[test]
    fn bad_branch_detected() {
        let r = run_main(vec![Goto(99)], 0);
        assert_eq!(r, Err(JcvmError::BadBranch));
    }

    #[test]
    fn swap_and_dup() {
        let r = run_main(vec![Const(1), Const(2), Swap, Isub, Ireturn], 0);
        assert_eq!(r, Ok(Some(1))); // 2 - 1 after swap
        let r = run_main(vec![Const(3), Dup, Imul, Ireturn], 0);
        assert_eq!(r, Ok(Some(9)));
    }
}
