//! The memory manager: static fields and arrays with firewall ownership.

use crate::error::JcvmError;
use crate::firewall::{Context, Firewall};

/// A static field slot.
#[derive(Debug, Clone, Copy)]
struct StaticField {
    value: i32,
    owner: Context,
    shared: bool,
}

/// An allocated array.
#[derive(Debug, Clone)]
struct ArrayObj {
    data: Vec<i32>,
    owner: Context,
}

/// Static-field and array storage behind firewall checks.
#[derive(Debug, Clone, Default)]
pub struct MemoryManager {
    statics: Vec<StaticField>,
    arrays: Vec<ArrayObj>,
}

impl MemoryManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        MemoryManager::default()
    }

    /// Declares a static field owned by `owner`; returns its index.
    pub fn add_static(&mut self, initial: i32, owner: Context, shared: bool) -> u8 {
        let idx = self.statics.len();
        assert!(idx < 256, "static field table full");
        self.statics.push(StaticField {
            value: initial,
            owner,
            shared,
        });
        idx as u8
    }

    /// Reads a static field under firewall check.
    ///
    /// # Errors
    ///
    /// [`JcvmError::NoSuchField`] or [`JcvmError::SecurityViolation`].
    pub fn get_static(
        &mut self,
        fw: &mut Firewall,
        current: Context,
        index: u8,
    ) -> Result<i32, JcvmError> {
        let f = self
            .statics
            .get(index as usize)
            .ok_or(JcvmError::NoSuchField(index))?;
        fw.check(current, f.owner, f.shared)?;
        Ok(f.value)
    }

    /// Writes a static field under firewall check.
    ///
    /// # Errors
    ///
    /// As for [`get_static`](Self::get_static).
    pub fn put_static(
        &mut self,
        fw: &mut Firewall,
        current: Context,
        index: u8,
        value: i32,
    ) -> Result<(), JcvmError> {
        let f = self
            .statics
            .get(index as usize)
            .ok_or(JcvmError::NoSuchField(index))?;
        fw.check(current, f.owner, f.shared)?;
        self.statics[index as usize].value = value;
        Ok(())
    }

    /// Allocates an `len`-element zeroed array owned by `owner`; returns
    /// its handle.
    ///
    /// # Errors
    ///
    /// [`JcvmError::ArrayBounds`] if `len` is negative.
    pub fn new_array(&mut self, owner: Context, len: i32) -> Result<i32, JcvmError> {
        if len < 0 {
            return Err(JcvmError::ArrayBounds);
        }
        let handle = self.arrays.len() as i32;
        self.arrays.push(ArrayObj {
            data: vec![0; len as usize],
            owner,
        });
        Ok(handle)
    }

    /// Reads `array[index]` under firewall check.
    ///
    /// # Errors
    ///
    /// [`JcvmError::ArrayBounds`] or [`JcvmError::SecurityViolation`].
    pub fn array_load(
        &mut self,
        fw: &mut Firewall,
        current: Context,
        handle: i32,
        index: i32,
    ) -> Result<i32, JcvmError> {
        let a = self
            .arrays
            .get(usize::try_from(handle).map_err(|_| JcvmError::ArrayBounds)?)
            .ok_or(JcvmError::ArrayBounds)?;
        fw.check(current, a.owner, false)?;
        a.data
            .get(usize::try_from(index).map_err(|_| JcvmError::ArrayBounds)?)
            .copied()
            .ok_or(JcvmError::ArrayBounds)
    }

    /// Writes `array[index] = value` under firewall check.
    ///
    /// # Errors
    ///
    /// As for [`array_load`](Self::array_load).
    pub fn array_store(
        &mut self,
        fw: &mut Firewall,
        current: Context,
        handle: i32,
        index: i32,
        value: i32,
    ) -> Result<(), JcvmError> {
        let h = usize::try_from(handle).map_err(|_| JcvmError::ArrayBounds)?;
        let a = self.arrays.get_mut(h).ok_or(JcvmError::ArrayBounds)?;
        fw.check(current, a.owner, false)?;
        let i = usize::try_from(index).map_err(|_| JcvmError::ArrayBounds)?;
        *a.data.get_mut(i).ok_or(JcvmError::ArrayBounds)? = value;
        Ok(())
    }

    /// Length of an array.
    ///
    /// # Errors
    ///
    /// [`JcvmError::ArrayBounds`] for a bad handle.
    pub fn array_length(&self, handle: i32) -> Result<i32, JcvmError> {
        let a = self
            .arrays
            .get(usize::try_from(handle).map_err(|_| JcvmError::ArrayBounds)?)
            .ok_or(JcvmError::ArrayBounds)?;
        Ok(a.data.len() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statics_respect_ownership() {
        let mut mm = MemoryManager::new();
        let mut fw = Firewall::new();
        let mine = mm.add_static(10, Context(1), false);
        let shared = mm.add_static(20, Context(1), true);
        assert_eq!(mm.get_static(&mut fw, Context(1), mine), Ok(10));
        assert_eq!(
            mm.get_static(&mut fw, Context(2), mine),
            Err(JcvmError::SecurityViolation)
        );
        assert_eq!(mm.get_static(&mut fw, Context(2), shared), Ok(20));
        mm.put_static(&mut fw, Context(1), mine, 11).unwrap();
        assert_eq!(mm.get_static(&mut fw, Context(1), mine), Ok(11));
    }

    #[test]
    fn arrays_bounds_checked() {
        let mut mm = MemoryManager::new();
        let mut fw = Firewall::new();
        let h = mm.new_array(Context(1), 4).unwrap();
        mm.array_store(&mut fw, Context(1), h, 2, 99).unwrap();
        assert_eq!(mm.array_load(&mut fw, Context(1), h, 2), Ok(99));
        assert_eq!(
            mm.array_load(&mut fw, Context(1), h, 4),
            Err(JcvmError::ArrayBounds)
        );
        assert_eq!(
            mm.array_load(&mut fw, Context(1), 9, 0),
            Err(JcvmError::ArrayBounds)
        );
        assert_eq!(mm.array_length(h), Ok(4));
    }

    #[test]
    fn negative_sizes_and_indices_rejected() {
        let mut mm = MemoryManager::new();
        let mut fw = Firewall::new();
        assert_eq!(mm.new_array(Context(0), -1), Err(JcvmError::ArrayBounds));
        let h = mm.new_array(Context(0), 2).unwrap();
        assert_eq!(
            mm.array_load(&mut fw, Context(0), h, -1),
            Err(JcvmError::ArrayBounds)
        );
    }

    #[test]
    fn cross_context_array_access_denied() {
        let mut mm = MemoryManager::new();
        let mut fw = Firewall::new();
        let h = mm.new_array(Context(2), 2).unwrap();
        assert_eq!(
            mm.array_store(&mut fw, Context(1), h, 0, 1),
            Err(JcvmError::SecurityViolation)
        );
        // JCRE may.
        assert!(mm.array_store(&mut fw, Context::JCRE, h, 0, 1).is_ok());
    }
}
