//! The HW/SW interface exploration driver (§4.3, Fig. 7b).
//!
//! For every interface configuration × workload, build the refined
//! model — interpreter → master adapter → layer-1 TLM bus → hardware
//! stack — run it, verify the result against the workload's reference,
//! and record cycles, transactions and layer-1 energy. The output is the
//! exploration table a designer would rank interfaces by.

use crate::adapter::{BusStack, IfaceConfig};
use crate::error::JcvmError;
use crate::hwstack::HwStackSlave;
use crate::interp::Interpreter;
use crate::workloads::Workload;
use hierbus_campaign::{CampaignOptions, CampaignPayload, CampaignStats, Json, Matrix};
use hierbus_core::Tlm1Bus;
use hierbus_ec::{Address, AddressRange};
use hierbus_obs::{BucketKey, EnergyLedger, SlaveMap};
use hierbus_power::{CharacterizationDb, Layer1EnergyModel};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// One measured design point.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationRow {
    /// Interface identifier (see [`IfaceConfig::label`]).
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Bus cycles the workload's stack traffic consumed.
    pub cycles: u64,
    /// Bus transactions issued by the master adapter.
    pub transactions: u64,
    /// Layer-1 estimated energy in pJ.
    pub energy_pj: f64,
    /// The workload's (verified) result.
    pub result: i32,
    /// Energy attribution: `(folded bucket key, pJ)` pairs in sorted
    /// key order (see [`BucketKey::folded_key`]) — the decomposition of
    /// [`energy_pj`](Self::energy_pj) along `slave;phase;class`.
    pub attribution: Vec<(String, f64)>,
}

impl ExplorationRow {
    /// Energy per bus cycle in pJ (a quick efficiency indicator).
    pub fn energy_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.energy_pj / self.cycles as f64
        }
    }

    /// Fraction of the row's energy attributed to `phase` (a
    /// [`hierbus_obs::LedgerPhase`] name, e.g. `"address"` or
    /// `"idle"`); 0 when the row has no energy.
    pub fn phase_share(&self, phase: &str) -> f64 {
        let total: f64 = self.attribution.iter().map(|(_, v)| v).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let matching: f64 = self
            .attribution
            .iter()
            .filter(|(k, _)| BucketKey::from_folded_key(k).is_some_and(|b| b.phase.name() == phase))
            .map(|(_, v)| v)
            .sum::<f64>()
            + 0.0; // empty sums are -0.0; normalize the sign
        matching / total
    }

    /// Reconstructs the row's [`EnergyLedger`] (layer `tlm1`, software
    /// dimension = the interface config label), e.g. for merging a
    /// campaign's rows into one per-config or sweep-wide ledger.
    ///
    /// # Panics
    ///
    /// Panics on a malformed attribution key — rows only carry keys
    /// produced by [`BucketKey::folded_key`].
    pub fn to_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new("tlm1").with_software(self.config.clone());
        ledger.set_cycles(self.cycles);
        for (key, pj) in &self.attribution {
            let key = BucketKey::from_folded_key(key)
                .unwrap_or_else(|| panic!("malformed attribution key {key:?}"));
            ledger.book(key, *pj);
        }
        ledger
    }
}

/// The attribution slave map for one interface configuration: the
/// hardware stack's register window.
fn hwstack_map(config: &IfaceConfig) -> SlaveMap {
    let mut map = SlaveMap::new();
    map.add(config.base, config.base + 0x100, "hwstack");
    map
}

/// Folds a ledger into the row representation: `(folded key, pJ)` in
/// sorted key order.
fn attribution_entries(ledger: &EnergyLedger) -> Vec<(String, f64)> {
    ledger.entries().map(|(k, v)| (k.folded_key(), v)).collect()
}

/// A reusable exploration runner: the layer-1 energy model (its weight
/// cache and characterization clone) is built once and [`reset`] between
/// design points instead of per run. One session replaying a sequence of
/// points produces bit-identical rows to building a fresh session per
/// point — the campaign engine hands each worker one session for its
/// whole share of the matrix.
///
/// [`reset`]: Layer1EnergyModel::reset
pub struct ExploreSession {
    model: Rc<RefCell<Layer1EnergyModel>>,
}

impl ExploreSession {
    /// Builds a session over a characterization database.
    pub fn new(db: &CharacterizationDb) -> Self {
        // Cloning the shared characterization DB is the campaign pool's
        // per-worker DB touch; the profiler counts it per thread.
        hierbus_obs::profiling::record_db_access();
        let mut model = Layer1EnergyModel::new(db.clone());
        // Per-cycle trace feeds the row's attribution ledger; reset()
        // keeps the allocation across design points.
        model.enable_trace();
        ExploreSession {
            model: Rc::new(RefCell::new(model)),
        }
    }

    /// Runs one workload on one interface configuration.
    ///
    /// # Errors
    ///
    /// Propagates any [`JcvmError`] the applet raises (the standard
    /// workloads raise none on capacities ≥ their stack needs).
    pub fn run(
        &mut self,
        config: IfaceConfig,
        workload: &Workload,
    ) -> Result<ExplorationRow, JcvmError> {
        self.model.borrow_mut().reset();
        let slave = HwStackSlave::new(
            AddressRange::new(Address::new(config.base), 0x100),
            config.width,
            config.capacity,
            config.waits(),
        );
        let mut bus = Tlm1Bus::new(vec![Box::new(slave)]);
        bus.enable_obs();
        bus.enable_frames();
        let mut stack = BusStack::new(bus, config);

        let tap = Rc::clone(&self.model);
        stack.set_observer(move |bus: &mut Tlm1Bus| {
            tap.borrow_mut().on_frame(bus.last_frame());
        });

        let mut vm = Interpreter::new();
        let (entry, args) = (workload.build)(&mut vm);
        let result = vm
            .run(entry, &args, &mut stack, 50_000_000)?
            .ok_or(JcvmError::FrameUnderflow)?;
        assert_eq!(
            result,
            workload.expected,
            "{} produced a wrong result on {}",
            workload.name,
            config.label()
        );

        let model = self.model.borrow();
        let ledger = model
            .ledger(stack.bus().obs().spans(), &hwstack_map(&config))
            .expect("session model traces");
        Ok(ExplorationRow {
            config: config.label(),
            workload: workload.name.to_owned(),
            cycles: stack.cycles(),
            transactions: stack.transactions(),
            energy_pj: model.total_energy(),
            result,
            attribution: attribution_entries(&ledger),
        })
    }
}

/// Runs one workload on one interface configuration (a one-shot
/// [`ExploreSession`]).
///
/// # Errors
///
/// Propagates any [`JcvmError`] the applet raises (the standard
/// workloads raise none on capacities ≥ their stack needs).
pub fn run_config(
    config: IfaceConfig,
    workload: &Workload,
    db: &CharacterizationDb,
) -> Result<ExplorationRow, JcvmError> {
    ExploreSession::new(db).run(config, workload)
}

/// [`run_config`] through the pre-optimization hot path: a fresh energy
/// model per point driving the bit-loop reference diff and per-toggle
/// database lookups. Kept so the benchmarks can report the old-vs-new
/// engine uplift on identical stimulus; must stay observationally
/// identical to [`run_config`].
///
/// # Errors
///
/// Propagates any [`JcvmError`] the applet raises, like [`run_config`].
pub fn run_config_reference(
    config: IfaceConfig,
    workload: &Workload,
    db: &CharacterizationDb,
) -> Result<ExplorationRow, JcvmError> {
    let mut reference_model = Layer1EnergyModel::new(db.clone());
    reference_model.enable_trace();
    let model = Rc::new(RefCell::new(reference_model));
    let slave = HwStackSlave::new(
        AddressRange::new(Address::new(config.base), 0x100),
        config.width,
        config.capacity,
        config.waits(),
    );
    let mut bus = Tlm1Bus::new(vec![Box::new(slave)]);
    bus.enable_obs();
    bus.enable_frames();
    let mut stack = BusStack::new(bus, config);

    let tap = Rc::clone(&model);
    stack.set_observer(move |bus: &mut Tlm1Bus| {
        tap.borrow_mut().on_frame_reference(bus.last_frame());
    });

    let mut vm = Interpreter::new();
    let (entry, args) = (workload.build)(&mut vm);
    let result = vm
        .run(entry, &args, &mut stack, 50_000_000)?
        .ok_or(JcvmError::FrameUnderflow)?;
    assert_eq!(
        result,
        workload.expected,
        "{} produced a wrong result on {}",
        workload.name,
        config.label()
    );

    let model = model.borrow();
    let ledger = model
        .ledger(stack.bus().obs().spans(), &hwstack_map(&config))
        .expect("reference model traces");
    Ok(ExplorationRow {
        config: config.label(),
        workload: workload.name.to_owned(),
        cycles: stack.cycles(),
        transactions: stack.transactions(),
        energy_pj: model.total_energy(),
        result,
        attribution: attribution_entries(&ledger),
    })
}

impl CampaignPayload for ExplorationRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".to_owned(), Json::Str(self.config.clone())),
            ("workload".to_owned(), Json::Str(self.workload.clone())),
            ("cycles".to_owned(), Json::Num(self.cycles as f64)),
            (
                "transactions".to_owned(),
                Json::Num(self.transactions as f64),
            ),
            ("energy_pj".to_owned(), Json::Num(self.energy_pj)),
            ("result".to_owned(), Json::Num(self.result as f64)),
            (
                "attribution".to_owned(),
                Json::Obj(
                    self.attribution
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        // Manifests from before the attribution field parse to None and
        // re-run, like any other stale payload.
        let attribution = match json.get("attribution")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(ExplorationRow {
            config: json.get("config")?.as_str()?.to_owned(),
            workload: json.get("workload")?.as_str()?.to_owned(),
            cycles: json.get("cycles")?.as_u64()?,
            transactions: json.get("transactions")?.as_u64()?,
            energy_pj: json.get("energy_pj")?.as_f64()?,
            result: json.get("result")?.as_f64()? as i32,
            attribution,
        })
    }
}

/// The campaign matrix of a sweep: `interface × workload`, in the same
/// row-major order the classic sequential loop used (configurations
/// outermost).
pub fn explore_matrix(configs: &[IfaceConfig], workloads: &[Workload]) -> Matrix {
    Matrix::new()
        .axis("iface", configs.iter().map(IfaceConfig::label))
        .axis("workload", workloads.iter().map(|w| w.name))
}

/// The full sweep as a campaign: every configuration × every workload,
/// executed per `opts` (worker count, optional resume manifest, limit)
/// with results merged in matrix order. One worker reproduces
/// [`explore`] exactly.
///
/// # Errors
///
/// I/O errors from the resume manifest, if one is configured.
///
/// # Panics
///
/// Panics if any workload produces a wrong result on any configuration —
/// the refinement must never change functional behaviour.
pub fn explore_campaign(
    configs: &[IfaceConfig],
    workloads: &[Workload],
    db: &Arc<CharacterizationDb>,
    opts: &CampaignOptions,
) -> std::io::Result<(Vec<ExplorationRow>, CampaignStats)> {
    let matrix = explore_matrix(configs, workloads);
    // Workers share the read-only characterization DB; each worker
    // builds one session (energy model) and resets it between points,
    // while the interpreter + bus + hardware stack are rebuilt inside
    // the runner, so nothing mutable crosses threads.
    let db = Arc::clone(db);
    let report = hierbus_campaign::run_with(
        &matrix,
        opts,
        || ExploreSession::new(&db),
        move |session, point| {
            let config = configs[point.coords[0]];
            let workload = &workloads[point.coords[1]];
            session
                .run(config, workload)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, config.label()))
        },
    )?;
    let stats = report.stats.clone();
    Ok((report.results.into_iter().flatten().collect(), stats))
}

/// The full sweep: every configuration × every workload, sequentially.
///
/// # Panics
///
/// Panics if any workload produces a wrong result on any configuration —
/// the refinement must never change functional behaviour.
pub fn explore(
    configs: &[IfaceConfig],
    workloads: &[Workload],
    db: &CharacterizationDb,
) -> Vec<ExplorationRow> {
    let db = Arc::new(db.clone());
    let (rows, _) = explore_campaign(
        configs,
        workloads,
        &db,
        &CampaignOptions::sequential("explore_jcvm"),
    )
    .expect("manifest-less campaign cannot fail on I/O");
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{RegOrganization, StatusPolicy};
    use crate::workloads::standard_workloads;
    use hierbus_ec::DataWidth;

    const BASE: u64 = 0x8000;

    #[test]
    fn refined_model_matches_functional_results() {
        let db = CharacterizationDb::uniform();
        let w = standard_workloads();
        let row = run_config(IfaceConfig::baseline(BASE), &w[0], &db).unwrap();
        assert_eq!(row.result, w[0].expected);
        assert!(row.cycles > 0);
        assert!(row.energy_pj > 0.0);
        assert!(row.transactions > 0);
    }

    #[test]
    fn narrower_interface_costs_more() {
        let db = CharacterizationDb::uniform();
        let w = &standard_workloads()[0];
        let wide = run_config(IfaceConfig::baseline(BASE), w, &db).unwrap();
        let narrow = run_config(
            IfaceConfig {
                width: DataWidth::W8,
                ..IfaceConfig::baseline(BASE)
            },
            w,
            &db,
        )
        .unwrap();
        assert!(narrow.cycles > wide.cycles);
        assert!(narrow.transactions > wide.transactions);
        assert!(narrow.energy_pj > wide.energy_pj);
    }

    #[test]
    fn polling_costs_transactions() {
        let db = CharacterizationDb::uniform();
        let w = &standard_workloads()[0];
        let silent = run_config(IfaceConfig::baseline(BASE), w, &db).unwrap();
        let polled = run_config(
            IfaceConfig {
                status_policy: StatusPolicy::EveryPush,
                ..IfaceConfig::baseline(BASE)
            },
            w,
            &db,
        )
        .unwrap();
        assert!(polled.transactions > silent.transactions);
    }

    #[test]
    fn single_register_organization_pays_for_peeks() {
        let db = CharacterizationDb::uniform();
        // fib peeks via Dup-free code, but arith_loop uses no peek at
        // all; bit_mix does not either — use a workload with Dup.
        // The interpreter implements Dup via peek+push, so arith-free
        // Dup users show the single-reg penalty. fib_rec has no Dup, so
        // compare on array_checksum (no Dup either) — fall back to
        // measuring that single-reg is never *cheaper*.
        let w = &standard_workloads()[0];
        let sep = run_config(IfaceConfig::baseline(BASE), w, &db).unwrap();
        let single = run_config(
            IfaceConfig {
                organization: RegOrganization::SingleDataReg,
                ..IfaceConfig::baseline(BASE)
            },
            w,
            &db,
        )
        .unwrap();
        assert!(single.transactions >= sep.transactions);
    }

    #[test]
    fn campaign_workers_match_sequential_sweep() {
        let db = CharacterizationDb::uniform();
        let configs = [
            IfaceConfig::baseline(BASE),
            IfaceConfig {
                width: DataWidth::W8,
                ..IfaceConfig::baseline(BASE)
            },
        ];
        let workloads = &standard_workloads()[..2];
        let sequential = explore(&configs, workloads, &db);
        let shared = Arc::new(db);
        let (parallel, stats) = explore_campaign(
            &configs,
            workloads,
            &shared,
            &CampaignOptions::with_workers("test", 3),
        )
        .unwrap();
        assert_eq!(parallel, sequential);
        assert_eq!(stats.executed, configs.len() * workloads.len());
    }

    #[test]
    fn reference_path_matches_optimized_path_bit_exact() {
        let db = CharacterizationDb::uniform();
        let configs = [
            IfaceConfig::baseline(BASE),
            IfaceConfig {
                width: DataWidth::W8,
                ..IfaceConfig::baseline(BASE)
            },
        ];
        let workloads = &standard_workloads()[..2];
        for config in configs {
            for w in workloads {
                let fast = run_config(config, w, &db).unwrap();
                let slow = run_config_reference(config, w, &db).unwrap();
                assert_eq!(fast, slow);
                assert_eq!(fast.energy_pj.to_bits(), slow.energy_pj.to_bits());
            }
        }
    }

    #[test]
    fn reused_session_matches_fresh_sessions_bit_exact() {
        let db = CharacterizationDb::uniform();
        let configs = [
            IfaceConfig::baseline(BASE),
            IfaceConfig {
                width: DataWidth::W8,
                ..IfaceConfig::baseline(BASE)
            },
        ];
        let workloads = &standard_workloads()[..2];
        let mut session = ExploreSession::new(&db);
        for config in configs {
            for w in workloads {
                let reused = session.run(config, w).unwrap();
                let fresh = run_config(config, w, &db).unwrap();
                assert_eq!(reused, fresh);
                assert_eq!(reused.energy_pj.to_bits(), fresh.energy_pj.to_bits());
            }
        }
    }

    #[test]
    fn attribution_decomposes_row_energy_and_round_trips() {
        let db = CharacterizationDb::uniform();
        let w = &standard_workloads()[0];
        let row = run_config(IfaceConfig::baseline(BASE), w, &db).unwrap();
        assert!(!row.attribution.is_empty());
        let total: f64 = row.attribution.iter().map(|(_, v)| v).sum();
        assert!(
            (total - row.energy_pj).abs() <= 1e-9 * row.energy_pj,
            "attribution sums to the row energy: {total} vs {}",
            row.energy_pj
        );
        // The stack bus is fully pipelined: address cycles overlap data
        // spans, which outrank them, so only data phases carry energy.
        assert!(row.phase_share("read-data") > 0.0);
        assert!(row.phase_share("write-data") > 0.0);
        // Phase shares partition.
        let sum: f64 = ["address", "read-data", "write-data", "idle"]
            .iter()
            .map(|p| row.phase_share(p))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // The manifest payload round-trips the attribution exactly.
        let back = ExplorationRow::from_json(&row.to_json()).unwrap();
        assert_eq!(back, row);
        // And the ledger reconstruction keeps the software dimension.
        let ledger = row.to_ledger();
        assert_eq!(ledger.software(), Some(row.config.as_str()));
        assert_eq!(ledger.cycles(), row.cycles);
        assert_eq!(ledger.total_pj(), total);
    }

    #[test]
    fn pre_attribution_payload_reruns_instead_of_resuming() {
        let db = CharacterizationDb::uniform();
        let w = &standard_workloads()[0];
        let row = run_config(IfaceConfig::baseline(BASE), w, &db).unwrap();
        let mut json = row.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "attribution");
        }
        assert!(ExplorationRow::from_json(&json).is_none());
    }

    #[test]
    fn merged_campaign_ledger_is_byte_identical_at_any_worker_count() {
        let db = CharacterizationDb::uniform();
        let configs = [
            IfaceConfig::baseline(BASE),
            IfaceConfig {
                width: DataWidth::W8,
                ..IfaceConfig::baseline(BASE)
            },
        ];
        let workloads = &standard_workloads()[..2];
        let shared = Arc::new(db);
        let mut folded = Vec::new();
        for workers in [1, 2, 4] {
            let (rows, _) = explore_campaign(
                &configs,
                workloads,
                &shared,
                &CampaignOptions::with_workers("merge-test", workers),
            )
            .unwrap();
            // Merge every row's ledger in matrix (index) order.
            let mut merged = EnergyLedger::new("tlm1");
            for row in &rows {
                merged.merge(&row.to_ledger());
            }
            folded.push(merged.folded());
        }
        assert_eq!(folded[0], folded[1], "2 workers changed the merge");
        assert_eq!(folded[0], folded[2], "4 workers changed the merge");
        assert!(!folded[0].is_empty());
    }

    #[test]
    fn full_sweep_is_consistent() {
        let db = CharacterizationDb::uniform();
        let configs = [
            IfaceConfig::baseline(BASE),
            IfaceConfig {
                width: DataWidth::W16,
                ..IfaceConfig::baseline(BASE)
            },
        ];
        let workloads = standard_workloads();
        let rows = explore(&configs, &workloads, &db);
        assert_eq!(rows.len(), configs.len() * workloads.len());
        for row in &rows {
            assert!(row.cycles > 0, "{} {}", row.config, row.workload);
            assert!(row.energy_per_cycle() > 0.0);
        }
    }
}
