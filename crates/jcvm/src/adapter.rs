//! The master adapter: [`OperandStack`] calls → bus transactions.
//!
//! "The bytecode interpreter invokes the same interface functions as in
//! the pure functional model. The master adapter translates them into
//! bus transactions. ... Communication is performed by using special
//! function register. During HW/SW interface evaluation we change the
//! address map, organization of these registers and used bus
//! transactions to access them." (§4.3) — [`IfaceConfig`] is that
//! variation space, [`BusStack`] the adapter.

use crate::error::JcvmError;
use crate::hwstack::regs;
use crate::stack::OperandStack;
use hierbus_core::{Completed, CycleBus, PollStatus};
use hierbus_ec::{Address, BurstLen, DataWidth, Transaction, TxnId, WaitProfile};

/// How the stack's special function registers are organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOrganization {
    /// One DATA register: writes push, reads pop. Peeking costs a
    /// pop-and-repush.
    SingleDataReg,
    /// Separate PUSH/POP registers plus a non-destructive TOP register.
    SeparatePushPop,
}

/// When the adapter polls the STATUS register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusPolicy {
    /// Never — rely on bus errors for overflow/underflow.
    Never,
    /// Before every push (defensive software).
    EveryPush,
    /// Before every push and pop.
    EveryOp,
}

/// One point of the HW/SW interface design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceConfig {
    /// Byte address of the stack's register window.
    pub base: u64,
    /// Interface width (hardware build parameter and software access
    /// width).
    pub width: DataWidth,
    /// Register organisation.
    pub organization: RegOrganization,
    /// STATUS polling discipline.
    pub status_policy: StatusPolicy,
    /// Hardware stack capacity in entries.
    pub capacity: usize,
    /// True to place the window behind one bus wait state (the
    /// address-map axis: a slow peripheral segment instead of the
    /// zero-wait SFR segment).
    pub slow_window: bool,
    /// True to move multi-value transfers (e.g. call arguments) as burst
    /// transactions through the stack's FIFO window instead of one
    /// single transfer per value — the "used bus transactions" axis.
    /// Only effective at 32-bit width (bursts are word-width).
    pub burst_transfers: bool,
}

impl IfaceConfig {
    /// A sensible default: 32-bit, separate registers, no polling, fast
    /// window.
    pub fn baseline(base: u64) -> Self {
        IfaceConfig {
            base,
            width: DataWidth::W32,
            organization: RegOrganization::SeparatePushPop,
            status_policy: StatusPolicy::Never,
            capacity: 64,
            slow_window: false,
            burst_transfers: false,
        }
    }

    /// The baseline with burst transfers through the FIFO window.
    pub fn with_bursts(base: u64) -> Self {
        IfaceConfig {
            burst_transfers: true,
            ..IfaceConfig::baseline(base)
        }
    }

    /// Every combination of width × organisation × polling × placement
    /// (24 design points).
    pub fn all_variants(base: u64) -> Vec<IfaceConfig> {
        let mut v = Vec::new();
        for width in DataWidth::ALL {
            for organization in [
                RegOrganization::SingleDataReg,
                RegOrganization::SeparatePushPop,
            ] {
                for status_policy in [StatusPolicy::Never, StatusPolicy::EveryPush] {
                    for slow_window in [false, true] {
                        v.push(IfaceConfig {
                            base,
                            width,
                            organization,
                            status_policy,
                            capacity: 64,
                            slow_window,
                            burst_transfers: false,
                        });
                    }
                }
            }
        }
        v
    }

    /// The bus wait profile of the chosen window placement. The slow
    /// segment inserts an address wait state too, so burst transfers
    /// (which pay the address phase once per block) have something to
    /// amortise.
    pub fn waits(&self) -> WaitProfile {
        if self.slow_window {
            WaitProfile::new(1, 1, 1)
        } else {
            WaitProfile::ZERO
        }
    }

    /// A compact human-readable identifier, e.g. `w32/sep/poll0/fast`.
    pub fn label(&self) -> String {
        format!(
            "w{}/{}/{}/{}{}",
            self.width.bits(),
            match self.organization {
                RegOrganization::SingleDataReg => "single",
                RegOrganization::SeparatePushPop => "sep",
            },
            match self.status_policy {
                StatusPolicy::Never => "poll0",
                StatusPolicy::EveryPush => "pollW",
                StatusPolicy::EveryOp => "pollRW",
            },
            if self.slow_window { "slow" } else { "fast" },
            if self.burst_transfers { "/burst" } else { "" }
        )
    }

    /// Byte-lane offsets of one value transfer for this width.
    fn lane_offsets(&self) -> &'static [u64] {
        match self.width {
            DataWidth::W8 => &[0, 1, 2, 3],
            DataWidth::W16 => &[0, 2],
            DataWidth::W32 => &[0],
        }
    }
}

/// Per-cycle observer closures installed with [`BusStack::set_observer`].
type Observer<B> = Box<dyn FnMut(&mut B)>;

/// The master adapter: owns the bus and the simulated clock, translating
/// stack calls into run-to-completion bus transactions.
pub struct BusStack<B: CycleBus> {
    bus: B,
    config: IfaceConfig,
    cycle: u64,
    next_id: TxnId,
    txns: u64,
    observer: Option<Observer<B>>,
}

impl<B: CycleBus> BusStack<B> {
    /// Wraps `bus` (which must already contain the matching
    /// [`HwStackSlave`](crate::hwstack::HwStackSlave)).
    pub fn new(bus: B, config: IfaceConfig) -> Self {
        BusStack {
            bus,
            config,
            cycle: 0,
            next_id: TxnId(0),
            txns: 0,
            observer: None,
        }
    }

    /// Installs a per-cycle observer called after every bus-process
    /// activation (energy models hook in here).
    pub fn set_observer(&mut self, observer: impl FnMut(&mut B) + 'static) {
        self.observer = Some(Box::new(observer));
    }

    /// Bus cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Bus transactions issued so far.
    pub fn transactions(&self) -> u64 {
        self.txns
    }

    /// The interface configuration.
    pub fn config(&self) -> IfaceConfig {
        self.config
    }

    /// Shared access to the bus.
    pub fn bus(&self) -> &B {
        &self.bus
    }

    /// Consumes the adapter, returning the bus.
    pub fn into_bus(self) -> B {
        self.bus
    }

    /// Runs one transaction to completion, advancing the clock.
    fn do_txn(&mut self, txn: Transaction) -> Completed {
        let id = txn.id;
        self.txns += 1;
        self.bus.issue(txn, self.cycle);
        loop {
            self.bus.bus_process(self.cycle);
            if let Some(obs) = &mut self.observer {
                obs(&mut self.bus);
            }
            self.cycle += 1;
            if let PollStatus::Done(done) = self.bus.poll(id) {
                return done;
            }
        }
    }

    fn fresh_id(&mut self) -> TxnId {
        let id = self.next_id;
        self.next_id = id.next();
        id
    }

    fn read_reg(&mut self, reg: u64) -> Result<u32, JcvmError> {
        let id = self.fresh_id();
        let done = self.do_txn(Transaction::single_read(
            id,
            Address::new(self.config.base + reg),
            DataWidth::W32,
        ));
        if done.error.is_some() {
            return Err(JcvmError::BusFault);
        }
        Ok(done.data[0])
    }

    /// Transfers one value to a data register as lane writes.
    fn write_value(&mut self, reg: u64, value: i32) -> Result<(), JcvmError> {
        let word = value as u32;
        for &off in self.config.lane_offsets() {
            let id = self.fresh_id();
            let lane_value = self.config.width.extract(Address::new(off), word);
            let done = self.do_txn(Transaction::single_write(
                id,
                Address::new(self.config.base + reg + off),
                self.config.width,
                lane_value,
            ));
            if done.error.is_some() {
                return Err(JcvmError::StackOverflow);
            }
        }
        Ok(())
    }

    /// Transfers one value from a data register as lane reads.
    fn read_value(&mut self, reg: u64, destructive: bool) -> Result<i32, JcvmError> {
        let mut word = 0u32;
        for &off in self.config.lane_offsets() {
            let id = self.fresh_id();
            let done = self.do_txn(Transaction::single_read(
                id,
                Address::new(self.config.base + reg + off),
                self.config.width,
            ));
            if done.error.is_some() {
                return Err(if destructive {
                    JcvmError::StackUnderflow
                } else {
                    JcvmError::BusFault
                });
            }
            word |= done.data[0] << (8 * off as u32);
        }
        Ok(word as i32)
    }

    fn push_reg(&self) -> u64 {
        match self.config.organization {
            RegOrganization::SingleDataReg => regs::DATA,
            RegOrganization::SeparatePushPop => regs::PUSH,
        }
    }

    fn pop_reg(&self) -> u64 {
        match self.config.organization {
            RegOrganization::SingleDataReg => regs::DATA,
            RegOrganization::SeparatePushPop => regs::POP,
        }
    }

    fn check_depth(&mut self, for_push: bool) -> Result<(), JcvmError> {
        let s = self.read_reg(regs::STATUS)?;
        let depth = (s & 0xFFFF) as usize;
        if for_push && depth >= self.config.capacity {
            return Err(JcvmError::StackOverflow);
        }
        if !for_push && depth == 0 {
            return Err(JcvmError::StackUnderflow);
        }
        Ok(())
    }
}

impl<B: CycleBus> BusStack<B> {
    /// Largest legal burst not exceeding `n` beats.
    fn burst_for(n: usize) -> BurstLen {
        match n {
            8.. => BurstLen::B8,
            4..=7 => BurstLen::B4,
            2..=3 => BurstLen::B2,
            _ => BurstLen::Single,
        }
    }

    fn burst_push(&mut self, values: &[i32]) -> Result<(), JcvmError> {
        let mut rest = values;
        while !rest.is_empty() {
            let burst = Self::burst_for(rest.len());
            let beats = burst.beats() as usize;
            let (chunk, tail) = rest.split_at(beats);
            let id = self.fresh_id();
            let txn = Transaction::new(
                id,
                hierbus_ec::AccessKind::DataWrite,
                Address::new(self.config.base + regs::WINDOW),
                DataWidth::W32,
                burst,
                chunk.iter().map(|&v| v as u32).collect::<Vec<u32>>(),
            );
            if self.do_txn(txn).error.is_some() {
                return Err(JcvmError::StackOverflow);
            }
            rest = tail;
        }
        Ok(())
    }

    fn burst_pop(&mut self, n: usize) -> Result<Vec<i32>, JcvmError> {
        let mut out = Vec::with_capacity(n);
        let mut left = n;
        while left > 0 {
            let burst = Self::burst_for(left);
            let id = self.fresh_id();
            let txn = Transaction::new(
                id,
                hierbus_ec::AccessKind::DataRead,
                Address::new(self.config.base + regs::WINDOW),
                DataWidth::W32,
                burst,
                Vec::<u32>::new(),
            );
            let done = self.do_txn(txn);
            if done.error.is_some() {
                return Err(JcvmError::StackUnderflow);
            }
            out.extend(done.data.iter().map(|&w| w as i32));
            left -= burst.beats() as usize;
        }
        Ok(out)
    }

    fn bursts_enabled(&self) -> bool {
        self.config.burst_transfers && self.config.width == DataWidth::W32
    }
}

impl<B: CycleBus> OperandStack for BusStack<B> {
    fn push(&mut self, value: i32) -> Result<(), JcvmError> {
        match self.config.status_policy {
            StatusPolicy::EveryPush | StatusPolicy::EveryOp => self.check_depth(true)?,
            StatusPolicy::Never => {}
        }
        let reg = self.push_reg();
        self.write_value(reg, value)
    }

    fn pop(&mut self) -> Result<i32, JcvmError> {
        if self.config.status_policy == StatusPolicy::EveryOp {
            self.check_depth(false)?;
        }
        let reg = self.pop_reg();
        self.read_value(reg, true)
    }

    fn push_slice(&mut self, values: &[i32]) -> Result<(), JcvmError> {
        if self.bursts_enabled() && values.len() > 1 {
            self.burst_push(values)
        } else {
            for &v in values {
                self.push(v)?;
            }
            Ok(())
        }
    }

    fn pop_many(&mut self, n: usize) -> Result<Vec<i32>, JcvmError> {
        if self.bursts_enabled() && n > 1 {
            self.burst_pop(n)
        } else {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.pop()?);
            }
            Ok(out)
        }
    }

    fn peek(&mut self) -> Result<i32, JcvmError> {
        match self.config.organization {
            RegOrganization::SeparatePushPop => self.read_value(regs::TOP, false),
            RegOrganization::SingleDataReg => {
                // No TOP register: a peek costs a full pop plus re-push —
                // exactly the kind of interface cost the exploration
                // surfaces.
                let v = self.pop()?;
                self.push(v)?;
                Ok(v)
            }
        }
    }
}

impl<B: CycleBus + std::fmt::Debug> std::fmt::Debug for BusStack<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusStack")
            .field("config", &self.config.label())
            .field("cycle", &self.cycle)
            .field("txns", &self.txns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hwstack::HwStackSlave;
    use hierbus_core::Tlm1Bus;
    use hierbus_ec::AddressRange;

    const BASE: u64 = 0x8000;

    fn make(config: IfaceConfig) -> BusStack<Tlm1Bus> {
        let slave = HwStackSlave::new(
            AddressRange::new(Address::new(BASE), 0x100),
            config.width,
            config.capacity,
            config.waits(),
        );
        BusStack::new(Tlm1Bus::new(vec![Box::new(slave)]), config)
    }

    #[test]
    fn w32_push_pop_roundtrip() {
        let mut s = make(IfaceConfig::baseline(BASE));
        s.push(0x1234_5678).unwrap();
        s.push(-7).unwrap();
        assert_eq!(s.pop(), Ok(-7));
        assert_eq!(s.pop(), Ok(0x1234_5678));
        assert_eq!(s.pop(), Err(JcvmError::StackUnderflow));
        assert_eq!(s.transactions(), 5);
    }

    #[test]
    fn w8_roundtrip_costs_four_transactions_per_op() {
        let cfg = IfaceConfig {
            width: DataWidth::W8,
            ..IfaceConfig::baseline(BASE)
        };
        let mut s = make(cfg);
        s.push(0x5AA5_C33C_u32 as i32).unwrap();
        assert_eq!(s.transactions(), 4);
        assert_eq!(s.pop(), Ok(0x5AA5_C33C_u32 as i32));
        assert_eq!(s.transactions(), 8);
    }

    #[test]
    fn w16_roundtrip() {
        let cfg = IfaceConfig {
            width: DataWidth::W16,
            ..IfaceConfig::baseline(BASE)
        };
        let mut s = make(cfg);
        s.push(0x7FFF_8001).unwrap();
        assert_eq!(s.pop(), Ok(0x7FFF_8001));
        assert_eq!(s.transactions(), 4);
    }

    #[test]
    fn separate_org_peek_is_nondestructive_and_cheap() {
        let mut s = make(IfaceConfig::baseline(BASE));
        s.push(42).unwrap();
        let before = s.transactions();
        assert_eq!(s.peek(), Ok(42));
        assert_eq!(s.transactions(), before + 1);
        assert_eq!(s.pop(), Ok(42));
    }

    #[test]
    fn single_org_peek_pops_and_repushes() {
        let cfg = IfaceConfig {
            organization: RegOrganization::SingleDataReg,
            ..IfaceConfig::baseline(BASE)
        };
        let mut s = make(cfg);
        s.push(9).unwrap();
        let before = s.transactions();
        assert_eq!(s.peek(), Ok(9));
        assert_eq!(s.transactions(), before + 2);
        assert_eq!(s.pop(), Ok(9));
    }

    #[test]
    fn status_polling_catches_overflow_without_bus_error() {
        let cfg = IfaceConfig {
            status_policy: StatusPolicy::EveryPush,
            capacity: 2,
            ..IfaceConfig::baseline(BASE)
        };
        let mut s = make(cfg);
        s.push(1).unwrap();
        s.push(2).unwrap();
        assert_eq!(s.push(3), Err(JcvmError::StackOverflow));
        // The stack itself never saw the third push.
        assert_eq!(s.pop(), Ok(2));
    }

    #[test]
    fn slow_window_costs_more_cycles() {
        let fast = {
            let mut s = make(IfaceConfig::baseline(BASE));
            s.push(1).unwrap();
            s.pop().unwrap();
            s.cycles()
        };
        let slow = {
            let cfg = IfaceConfig {
                slow_window: true,
                ..IfaceConfig::baseline(BASE)
            };
            let mut s = make(cfg);
            s.push(1).unwrap();
            s.pop().unwrap();
            s.cycles()
        };
        assert!(slow > fast, "slow {slow} !> fast {fast}");
    }

    #[test]
    fn all_variants_cover_the_axes() {
        let v = IfaceConfig::all_variants(BASE);
        assert_eq!(v.len(), 24);
        let labels: std::collections::HashSet<String> = v.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 24, "labels must be unique");
    }

    #[test]
    fn burst_push_pop_roundtrip_through_the_window() {
        let mut s = make(IfaceConfig::with_bursts(BASE));
        let values: Vec<i32> = (0..10).map(|i| i * 3 - 5).collect();
        s.push_slice(&values).unwrap();
        // Pop order is top-first: the reverse of the pushed slice.
        let popped = s.pop_many(values.len()).unwrap();
        let expected: Vec<i32> = values.iter().rev().copied().collect();
        assert_eq!(popped, expected);
    }

    #[test]
    fn bursts_cut_transaction_count() {
        use crate::stack::OperandStack as _;
        let values: Vec<i32> = (0..8).collect();
        let mut single = make(IfaceConfig::baseline(BASE));
        single.push_slice(&values).unwrap();
        single.pop_many(8).unwrap();
        let mut burst = make(IfaceConfig::with_bursts(BASE));
        burst.push_slice(&values).unwrap();
        burst.pop_many(8).unwrap();
        assert_eq!(single.transactions(), 16);
        assert_eq!(burst.transactions(), 2, "one B8 write + one B8 read");
        // On the zero-wait window bursts only tie on cycles (one beat
        // per cycle either way) — their win is transactions.
        assert!(burst.cycles() <= single.cycles());
    }

    #[test]
    fn bursts_amortise_address_waits_on_the_slow_window() {
        use crate::stack::OperandStack as _;
        let slow = |burst_transfers| IfaceConfig {
            slow_window: true,
            burst_transfers,
            ..IfaceConfig::baseline(BASE)
        };
        let values: Vec<i32> = (0..8).collect();
        let mut single = make(slow(false));
        single.push_slice(&values).unwrap();
        single.pop_many(8).unwrap();
        let mut burst = make(slow(true));
        burst.push_slice(&values).unwrap();
        burst.pop_many(8).unwrap();
        assert!(
            burst.cycles() < single.cycles(),
            "burst {} !< single {}",
            burst.cycles(),
            single.cycles()
        );
    }

    #[test]
    fn bursts_require_word_width() {
        let cfg = IfaceConfig {
            width: DataWidth::W16,
            ..IfaceConfig::with_bursts(BASE)
        };
        let mut s = make(cfg);
        s.push_slice(&[1, 2, 3]).unwrap(); // falls back to singles
        assert_eq!(s.pop_many(3).unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn observer_sees_every_bus_activation() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let count = Rc::new(RefCell::new(0u64));
        let mut s = make(IfaceConfig::baseline(BASE));
        let c2 = Rc::clone(&count);
        s.set_observer(move |_bus| *c2.borrow_mut() += 1);
        s.push(5).unwrap();
        s.pop().unwrap();
        assert!(*count.borrow() >= 2);
    }
}
