//! The operand-stack interface — the HW/SW boundary under exploration.

use crate::error::JcvmError;

/// What the bytecode interpreter requires of an operand stack.
///
/// In the unrefined model (Fig. 7a) this is a plain in-memory stack; in
/// the refined model (Fig. 7b) the same calls cross the TLM bus through
/// the master adapter. The interpreter never knows which — that is the
/// point of the refinement.
pub trait OperandStack {
    /// Pushes a value.
    ///
    /// # Errors
    ///
    /// [`JcvmError::StackOverflow`] at capacity;
    /// [`JcvmError::BusFault`] if the hardware path fails.
    fn push(&mut self, value: i32) -> Result<(), JcvmError>;

    /// Pops the top value.
    ///
    /// # Errors
    ///
    /// [`JcvmError::StackUnderflow`] when empty;
    /// [`JcvmError::BusFault`] if the hardware path fails.
    fn pop(&mut self) -> Result<i32, JcvmError>;

    /// Reads the top value without removing it.
    ///
    /// # Errors
    ///
    /// As for [`pop`](Self::pop).
    fn peek(&mut self) -> Result<i32, JcvmError> {
        let v = self.pop()?;
        self.push(v)?;
        Ok(v)
    }

    /// Pushes several values, first element first (deepest). The default
    /// loops over [`push`](Self::push); bus-attached stacks may override
    /// it with burst transfers.
    ///
    /// # Errors
    ///
    /// As for [`push`](Self::push).
    fn push_slice(&mut self, values: &[i32]) -> Result<(), JcvmError> {
        for &v in values {
            self.push(v)?;
        }
        Ok(())
    }

    /// Pops `n` values, returned top-first. The default loops over
    /// [`pop`](Self::pop); bus-attached stacks may override it with
    /// burst transfers.
    ///
    /// # Errors
    ///
    /// As for [`pop`](Self::pop).
    fn pop_many(&mut self, n: usize) -> Result<Vec<i32>, JcvmError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.pop()?);
        }
        Ok(out)
    }

    /// Current depth, if cheaply known (`None` when finding out would
    /// cost bus transactions).
    fn depth_hint(&self) -> Option<usize> {
        None
    }
}

/// The functional, in-memory operand stack of the unrefined model.
#[derive(Debug, Clone)]
pub struct SoftStack {
    values: Vec<i32>,
    capacity: usize,
    /// push + pop + peek call count (for adapter-traffic comparisons).
    ops: u64,
}

impl SoftStack {
    /// Creates a stack with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stack capacity must be non-zero");
        SoftStack {
            values: Vec::with_capacity(capacity),
            capacity,
            ops: 0,
        }
    }

    /// Total interface calls served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The values bottom-to-top (inspection aid).
    pub fn values(&self) -> &[i32] {
        &self.values
    }
}

impl OperandStack for SoftStack {
    fn push(&mut self, value: i32) -> Result<(), JcvmError> {
        self.ops += 1;
        if self.values.len() >= self.capacity {
            return Err(JcvmError::StackOverflow);
        }
        self.values.push(value);
        Ok(())
    }

    fn pop(&mut self) -> Result<i32, JcvmError> {
        self.ops += 1;
        self.values.pop().ok_or(JcvmError::StackUnderflow)
    }

    fn peek(&mut self) -> Result<i32, JcvmError> {
        self.ops += 1;
        self.values.last().copied().ok_or(JcvmError::StackUnderflow)
    }

    fn depth_hint(&self) -> Option<usize> {
        Some(self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut s = SoftStack::new(8);
        s.push(1).unwrap();
        s.push(2).unwrap();
        assert_eq!(s.peek(), Ok(2));
        assert_eq!(s.pop(), Ok(2));
        assert_eq!(s.pop(), Ok(1));
        assert_eq!(s.pop(), Err(JcvmError::StackUnderflow));
        assert_eq!(s.ops(), 6); // the failed pop is still an interface call
    }

    #[test]
    fn overflow_at_capacity() {
        let mut s = SoftStack::new(2);
        s.push(1).unwrap();
        s.push(2).unwrap();
        assert_eq!(s.push(3), Err(JcvmError::StackOverflow));
        assert_eq!(s.depth_hint(), Some(2));
    }

    #[test]
    fn default_peek_roundtrips_through_pop_push() {
        struct Minimal(Vec<i32>);
        impl OperandStack for Minimal {
            fn push(&mut self, v: i32) -> Result<(), JcvmError> {
                self.0.push(v);
                Ok(())
            }
            fn pop(&mut self) -> Result<i32, JcvmError> {
                self.0.pop().ok_or(JcvmError::StackUnderflow)
            }
        }
        let mut m = Minimal(vec![7]);
        assert_eq!(m.peek(), Ok(7));
        assert_eq!(m.0, vec![7]);
        assert_eq!(m.depth_hint(), None);
    }
}
