//! VM error conditions.

use std::fmt;

/// Everything that can abort bytecode execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JcvmError {
    /// Operand stack capacity exceeded.
    StackOverflow,
    /// Pop or peek from an empty operand stack.
    StackUnderflow,
    /// The applet firewall denied a cross-context access.
    SecurityViolation,
    /// `invokestatic` named a method outside the table.
    NoSuchMethod(u8),
    /// A static-field index outside the table.
    NoSuchField(u8),
    /// Array handle or index out of range.
    ArrayBounds,
    /// A local-variable slot outside the frame.
    BadLocal(u8),
    /// Branch target outside the method.
    BadBranch,
    /// `return` executed with no caller and no result convention.
    FrameUnderflow,
    /// The hardware stack path reported a bus error.
    BusFault,
    /// Execution exceeded the step budget (runaway applet).
    Timeout,
}

impl fmt::Display for JcvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JcvmError::StackOverflow => f.write_str("operand stack overflow"),
            JcvmError::StackUnderflow => f.write_str("operand stack underflow"),
            JcvmError::SecurityViolation => f.write_str("applet firewall denied the access"),
            JcvmError::NoSuchMethod(m) => write!(f, "no method with index {m}"),
            JcvmError::NoSuchField(i) => write!(f, "no static field with index {i}"),
            JcvmError::ArrayBounds => f.write_str("array access out of bounds"),
            JcvmError::BadLocal(i) => write!(f, "local variable {i} outside the frame"),
            JcvmError::BadBranch => f.write_str("branch target outside the method"),
            JcvmError::FrameUnderflow => f.write_str("return without a caller frame"),
            JcvmError::BusFault => f.write_str("bus error on the hardware stack path"),
            JcvmError::Timeout => f.write_str("step budget exhausted"),
        }
    }
}

impl std::error::Error for JcvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_period() {
        let errs = [
            JcvmError::StackOverflow,
            JcvmError::SecurityViolation,
            JcvmError::NoSuchMethod(3),
            JcvmError::BusFault,
        ];
        for e in errs {
            let m = e.to_string();
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }
}
