//! The applet firewall.
//!
//! Java Card isolates applets in *contexts*: code running in one context
//! may not touch another context's objects unless they are explicitly
//! shared. The functional VM model of the paper carries a firewall
//! module; this is its reproduction, checked on every cross-context
//! method call and static-field access.

use crate::error::JcvmError;
use std::fmt;

/// A firewall context (applet identity). Context 0 is the card runtime
/// (JCRE), which may access everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Context(pub u8);

impl Context {
    /// The card runtime's privileged context.
    pub const JCRE: Context = Context(0);
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// The access checker.
#[derive(Debug, Clone, Default)]
pub struct Firewall {
    checks: u64,
    denials: u64,
}

impl Firewall {
    /// Creates a firewall with zeroed counters.
    pub fn new() -> Self {
        Firewall::default()
    }

    /// Checks an access from `current` to an object owned by `owner`.
    /// `shared` marks objects exposed as shareable interfaces.
    ///
    /// # Errors
    ///
    /// [`JcvmError::SecurityViolation`] for a cross-context access to a
    /// non-shared object from a non-JCRE context.
    pub fn check(
        &mut self,
        current: Context,
        owner: Context,
        shared: bool,
    ) -> Result<(), JcvmError> {
        self.checks += 1;
        if current == owner || current == Context::JCRE || shared {
            Ok(())
        } else {
            self.denials += 1;
            Err(JcvmError::SecurityViolation)
        }
    }

    /// Total checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Checks that were denied.
    pub fn denials(&self) -> u64 {
        self.denials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_context_allowed() {
        let mut fw = Firewall::new();
        assert!(fw.check(Context(2), Context(2), false).is_ok());
    }

    #[test]
    fn jcre_is_privileged() {
        let mut fw = Firewall::new();
        assert!(fw.check(Context::JCRE, Context(5), false).is_ok());
    }

    #[test]
    fn cross_context_denied_unless_shared() {
        let mut fw = Firewall::new();
        assert_eq!(
            fw.check(Context(1), Context(2), false),
            Err(JcvmError::SecurityViolation)
        );
        assert!(fw.check(Context(1), Context(2), true).is_ok());
        assert_eq!(fw.checks(), 2);
        assert_eq!(fw.denials(), 1);
    }
}
