//! Benchmark applets for the HW/SW interface exploration.

use crate::bytecode::{Bytecode, Method, MethodId};
use crate::interp::Interpreter;
use Bytecode::*;

/// A named applet: builds itself into a VM and knows its expected
/// result, so every exploration run is also a correctness check.
pub struct Workload {
    /// Short identifier.
    pub name: &'static str,
    /// Installs the methods; returns the entry point and its arguments.
    pub build: fn(&mut Interpreter) -> (MethodId, Vec<i32>),
    /// The correct result.
    pub expected: i32,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("expected", &self.expected)
            .finish()
    }
}

/// The standard applet set: stack-light arithmetic, call-heavy
/// recursion, array traffic and crypto-style bit mixing.
pub fn standard_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "arith_loop",
            build: build_arith_loop,
            expected: 5050, // sum 1..=100
        },
        Workload {
            name: "fib_rec",
            build: build_fib,
            expected: 144, // fib(12)
        },
        Workload {
            name: "array_checksum",
            build: build_array_checksum,
            expected: checksum_reference(16),
        },
        Workload {
            name: "bit_mix",
            build: build_bit_mix,
            expected: bit_mix_reference(0x1234_5678, 12),
        },
        Workload {
            name: "dup_squares",
            build: build_dup_squares,
            expected: (1..=10).map(|i| i * i).sum(), // 385
        },
        Workload {
            name: "poly_call",
            build: build_poly_call,
            expected: poly_call_reference(),
        },
    ]
}

fn build_arith_loop(vm: &mut Interpreter) -> (MethodId, Vec<i32>) {
    // locals: 0 = i, 1 = acc; sum 1..=100.
    let code = vec![
        Const(100),
        Istore(0),
        Const(0),
        Istore(1),
        // loop @4:
        Iload(1),
        Iload(0),
        Iadd,
        Istore(1),
        Iinc(0, -1),
        Iload(0),
        IfNe(4),
        Iload(1),
        Ireturn,
    ];
    (vm.add_method(Method::new(code, 0, 2)), vec![])
}

fn build_fib(vm: &mut Interpreter) -> (MethodId, Vec<i32>) {
    let fib = MethodId(0);
    let code = vec![
        Iload(0),
        Const(2),
        IfIcmpGe(5),
        Iload(0),
        Ireturn,
        // recurse @5:
        Iload(0),
        Const(1),
        Isub,
        Invokestatic(fib),
        Iload(0),
        Const(2),
        Isub,
        Invokestatic(fib),
        Iadd,
        Ireturn,
    ];
    let id = vm.add_method(Method::new(code, 1, 1));
    debug_assert_eq!(id, fib);
    (id, vec![12])
}

/// Reference for `array_checksum`: xor of (i*i + i) over 0..n.
fn checksum_reference(n: i32) -> i32 {
    (0..n).fold(0, |acc, i| acc ^ (i.wrapping_mul(i).wrapping_add(i)))
}

fn build_array_checksum(vm: &mut Interpreter) -> (MethodId, Vec<i32>) {
    // locals: 0 = n, 1 = handle, 2 = i, 3 = acc.
    let code = vec![
        Iload(0),
        NewArray,
        Istore(1),
        Const(0),
        Istore(2),
        // fill loop @5: a[i] = i*i + i
        Iload(1),
        Iload(2),
        Iload(2),
        Iload(2),
        Imul,
        Iload(2),
        Iadd,
        ArrayStore,
        Iinc(2, 1),
        Iload(2),
        Iload(0),
        IfIcmpLt(5),
        // xor loop
        Const(0),
        Istore(3),
        Const(0),
        Istore(2),
        // @21:
        Iload(3),
        Iload(1),
        Iload(2),
        ArrayLoad,
        Ixor,
        Istore(3),
        Iinc(2, 1),
        Iload(2),
        Iload(0),
        IfIcmpLt(21),
        Iload(3),
        Ireturn,
    ];
    (vm.add_method(Method::new(code, 1, 4)), vec![16])
}

/// Reference for `bit_mix`: a TEA-flavoured mixing loop.
fn bit_mix_reference(seed: i32, rounds: i32) -> i32 {
    let mut v = seed;
    for _ in 0..rounds {
        v = v
            .wrapping_mul(3)
            .wrapping_add(v.wrapping_shl(4) ^ v.wrapping_shr(5))
            .wrapping_add(0x9E37);
    }
    v
}

fn build_bit_mix(vm: &mut Interpreter) -> (MethodId, Vec<i32>) {
    // Arguments arrive in locals: 0 = v, 1 = round counter.
    let code = vec![
        // loop @0: v = v*3 + (v<<4 ^ v>>5) + 0x9E37
        Iload(0),
        Const(3),
        Imul,
        Iload(0),
        Const(4),
        Ishl,
        Iload(0),
        Const(5),
        Ishr,
        Ixor,
        Iadd,
        Const(0x9E37),
        Iadd,
        Istore(0),
        Iinc(1, -1),
        Iload(1),
        IfNe(0),
        Iload(0),
        Ireturn,
    ];
    (
        vm.add_method(Method::new(code, 2, 2)),
        vec![0x1234_5678, 12],
    )
}

fn build_dup_squares(vm: &mut Interpreter) -> (MethodId, Vec<i32>) {
    // Sum of squares 1..=10, squaring via Dup + Imul — the peek-heavy
    // pattern that separates the register organisations (a single-data-
    // register stack pays a pop + re-push for every Dup).
    // locals: 0 = i, 1 = acc.
    let code = vec![
        Const(10),
        Istore(0),
        Const(0),
        Istore(1),
        // loop @4:
        Iload(0),
        Dup,
        Imul,
        Iload(1),
        Iadd,
        Istore(1),
        Iinc(0, -1),
        Iload(0),
        IfNe(4),
        Iload(1),
        Ireturn,
    ];
    (vm.add_method(Method::new(code, 0, 2)), vec![])
}

/// Reference for `poly_call`: Σ horner(i, i+1, i+2, i+3) for i in 1..=12
/// with horner(x,a,b,c) = (a·x + b)·x + c.
fn poly_call_reference() -> i32 {
    (1..=12i32).fold(0, |acc, i| {
        let (x, a, b, c) = (i, i + 1, i + 2, i + 3);
        acc.wrapping_add(
            (a.wrapping_mul(x).wrapping_add(b))
                .wrapping_mul(x)
                .wrapping_add(c),
        )
    })
}

fn build_poly_call(vm: &mut Interpreter) -> (MethodId, Vec<i32>) {
    // horner(x, a, b, c) = (a*x + b)*x + c — four arguments per call, so
    // the burst-transfer interface variant can fetch them as one B4.
    let horner = vm.add_method(Method::new(
        vec![
            Iload(1),
            Iload(0),
            Imul,
            Iload(2),
            Iadd,
            Iload(0),
            Imul,
            Iload(3),
            Iadd,
            Ireturn,
        ],
        4,
        4,
    ));
    // main: locals 0 = i, 1 = acc.
    let code = vec![
        Const(1),
        Istore(0),
        Const(0),
        Istore(1),
        // loop @4: acc += horner(i, i+1, i+2, i+3)
        Iload(1),
        Iload(0),
        Iload(0),
        Const(1),
        Iadd,
        Iload(0),
        Const(2),
        Iadd,
        Iload(0),
        Const(3),
        Iadd,
        Invokestatic(horner),
        Iadd,
        Istore(1),
        Iinc(0, 1),
        Iload(0),
        Const(13),
        IfIcmpLt(4),
        Iload(1),
        Ireturn,
    ];
    (vm.add_method(Method::new(code, 0, 2)), vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::SoftStack;

    #[test]
    fn every_workload_matches_its_reference_on_the_soft_stack() {
        for w in standard_workloads() {
            let mut vm = Interpreter::new();
            let (entry, args) = (w.build)(&mut vm);
            let mut stack = SoftStack::new(512);
            let result = vm
                .run(entry, &args, &mut stack, 10_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(result, Some(w.expected), "{}", w.name);
        }
    }

    #[test]
    fn references_are_nontrivial() {
        assert_ne!(checksum_reference(16), 0);
        assert_ne!(bit_mix_reference(0x1234_5678, 12), 0x1234_5678);
    }

    #[test]
    fn workload_names_are_unique() {
        let names: Vec<&str> = standard_workloads().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
