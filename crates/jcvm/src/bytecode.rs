//! The Java Card bytecode subset.
//!
//! Branch targets are *instruction indices* within the method (not byte
//! offsets) — the interpreter works on decoded instruction vectors, as
//! the paper's functional SystemC model does.

use std::fmt;

/// Identifies a method in the [`Interpreter`](crate::interp::Interpreter)
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(pub u8);

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One instruction of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // semantics follow the JCVM spec
pub enum Bytecode {
    Nop,
    /// Push a small constant.
    Const(i32),
    Iadd,
    Isub,
    Imul,
    Iand,
    Ior,
    Ixor,
    Ineg,
    Ishl,
    Ishr,
    Dup,
    Pop,
    Swap,
    /// Push local variable `n`.
    Iload(u8),
    /// Pop into local variable `n`.
    Istore(u8),
    /// Add the immediate to local `n` without touching the stack.
    Iinc(u8, i8),
    /// Branch if popped value == 0.
    IfEq(u16),
    /// Branch if popped value != 0.
    IfNe(u16),
    /// Branch if popped value < 0.
    IfLt(u16),
    /// Branch if popped value >= 0.
    IfGe(u16),
    /// Pop b, pop a, branch if a == b.
    IfIcmpEq(u16),
    /// Pop b, pop a, branch if a != b.
    IfIcmpNe(u16),
    /// Pop b, pop a, branch if a < b.
    IfIcmpLt(u16),
    /// Pop b, pop a, branch if a >= b.
    IfIcmpGe(u16),
    Goto(u16),
    /// Call a static method; arguments are popped into its locals.
    Invokestatic(MethodId),
    /// Return void.
    Return,
    /// Return the popped value to the caller's stack.
    Ireturn,
    /// Push static field `n`.
    Getstatic(u8),
    /// Pop into static field `n`.
    Putstatic(u8),
    /// Push `array[index]` (pops index, then handle).
    ArrayLoad,
    /// `array[index] = value` (pops value, index, handle).
    ArrayStore,
    /// Push the length of the array whose handle is popped.
    ArrayLength,
    /// Allocate an array of the popped length; push its handle.
    NewArray,
}

impl Bytecode {
    /// The instruction's mnemonic, for dispatch profiling and
    /// disassembly listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Bytecode::Nop => "nop",
            Bytecode::Const(_) => "const",
            Bytecode::Iadd => "iadd",
            Bytecode::Isub => "isub",
            Bytecode::Imul => "imul",
            Bytecode::Iand => "iand",
            Bytecode::Ior => "ior",
            Bytecode::Ixor => "ixor",
            Bytecode::Ineg => "ineg",
            Bytecode::Ishl => "ishl",
            Bytecode::Ishr => "ishr",
            Bytecode::Dup => "dup",
            Bytecode::Pop => "pop",
            Bytecode::Swap => "swap",
            Bytecode::Iload(_) => "iload",
            Bytecode::Istore(_) => "istore",
            Bytecode::Iinc(..) => "iinc",
            Bytecode::IfEq(_) => "ifeq",
            Bytecode::IfNe(_) => "ifne",
            Bytecode::IfLt(_) => "iflt",
            Bytecode::IfGe(_) => "ifge",
            Bytecode::IfIcmpEq(_) => "if_icmpeq",
            Bytecode::IfIcmpNe(_) => "if_icmpne",
            Bytecode::IfIcmpLt(_) => "if_icmplt",
            Bytecode::IfIcmpGe(_) => "if_icmpge",
            Bytecode::Goto(_) => "goto",
            Bytecode::Invokestatic(_) => "invokestatic",
            Bytecode::Return => "return",
            Bytecode::Ireturn => "ireturn",
            Bytecode::Getstatic(_) => "getstatic",
            Bytecode::Putstatic(_) => "putstatic",
            Bytecode::ArrayLoad => "arrayload",
            Bytecode::ArrayStore => "arraystore",
            Bytecode::ArrayLength => "arraylength",
            Bytecode::NewArray => "newarray",
        }
    }
}

/// A method: its code, frame shape and firewall context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// The instruction vector.
    pub code: Vec<Bytecode>,
    /// Number of arguments (popped from the caller's stack into locals
    /// 0..n_args).
    pub n_args: u8,
    /// Total local-variable slots (≥ `n_args`).
    pub n_locals: u8,
    /// Firewall context owning the method.
    pub context: crate::firewall::Context,
    /// True if other contexts may invoke it (shareable interface).
    pub entry_point: bool,
}

impl Method {
    /// Creates a context-0, non-shared method.
    pub fn new(code: Vec<Bytecode>, n_args: u8, n_locals: u8) -> Self {
        assert!(n_locals >= n_args, "locals must include the arguments");
        Method {
            code,
            n_args,
            n_locals,
            context: crate::firewall::Context(0),
            entry_point: false,
        }
    }

    /// Sets the owning firewall context.
    pub fn in_context(mut self, ctx: crate::firewall::Context) -> Self {
        self.context = ctx;
        self
    }

    /// Marks the method callable across contexts.
    pub fn shared(mut self) -> Self {
        self.entry_point = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::Context;

    #[test]
    fn method_builder_sets_flags() {
        let m = Method::new(vec![Bytecode::Return], 1, 2)
            .in_context(Context(3))
            .shared();
        assert_eq!(m.context, Context(3));
        assert!(m.entry_point);
        assert_eq!(m.n_args, 1);
    }

    #[test]
    #[should_panic(expected = "locals must include")]
    fn locals_fewer_than_args_rejected() {
        let _ = Method::new(vec![], 3, 2);
    }
}
