//! The hardware operand stack as a bus slave (Fig. 7b: slave adapter +
//! stack).
//!
//! Register map (word offsets from the window base):
//!
//! | offset | name   | access | contents |
//! |-------:|--------|--------|----------|
//! | 0x00   | DATA   | R/W    | single-register organization: write pushes, read pops |
//! | 0x04   | STATUS | R      | bits 0..16 depth, bit 16 overflow (sticky), bit 17 underflow (sticky) |
//! | 0x08   | CTRL   | W      | bit 0: reset (clear stack and flags) |
//! | 0x10   | PUSH   | W      | separate organization: write pushes |
//! | 0x14   | POP    | R      | separate organization: read pops |
//! | 0x18   | TOP    | R      | non-destructive top-of-stack |
//!
//! The block is built for a fixed **interface width** (8, 16 or 32 bit —
//! a hardware parameter and one of the exploration axes): sub-word
//! interfaces assemble a push from the byte lanes written to the data
//! word in increasing order, completing at the highest lane, and
//! symmetrically deliver a pop over several lane reads. Overflowing a
//! push or underflowing a pop signals a bus error and sets the sticky
//! status flag.

use hierbus_core::{SlaveReply, TlmSlave};
use hierbus_ec::{AccessRights, Address, AddressRange, DataWidth, SlaveConfig, WaitProfile};

/// Register word offsets.
pub mod regs {
    /// Combined push/pop data register.
    pub const DATA: u64 = 0x00;
    /// Depth and sticky flags.
    pub const STATUS: u64 = 0x04;
    /// Control (reset).
    pub const CTRL: u64 = 0x08;
    /// Push-only data register.
    pub const PUSH: u64 = 0x10;
    /// Pop-only data register.
    pub const POP: u64 = 0x14;
    /// Non-destructive top-of-stack.
    pub const TOP: u64 = 0x18;
    /// Start of the FIFO burst window: every word in
    /// `[WINDOW, WINDOW + WINDOW_WORDS*4)` pushes on write and pops on
    /// read, so an address-incrementing burst moves one value per beat —
    /// the "different bus transactions" axis of the exploration.
    pub const WINDOW: u64 = 0x20;
    /// Size of the burst window in words.
    pub const WINDOW_WORDS: u64 = 8;
}

/// Status register bit positions.
pub mod status {
    /// Sticky overflow flag.
    pub const OVERFLOW: u32 = 1 << 16;
    /// Sticky underflow flag.
    pub const UNDERFLOW: u32 = 1 << 17;
}

/// The hardware stack peripheral.
#[derive(Debug, Clone)]
pub struct HwStackSlave {
    config: SlaveConfig,
    width: DataWidth,
    capacity: usize,
    values: Vec<i32>,
    /// Write-side lane assembly.
    staged_in: u32,
    lanes_written: u8,
    /// Read-side lane delivery.
    staged_out: u32,
    lanes_read: u8,
    overflow: bool,
    underflow: bool,
    pushes: u64,
    pops: u64,
}

impl HwStackSlave {
    /// Creates the stack at `range` with the given interface `width`,
    /// `capacity` entries and bus `waits` (the window-placement axis).
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than 0x20 bytes or capacity is
    /// zero.
    pub fn new(range: AddressRange, width: DataWidth, capacity: usize, waits: WaitProfile) -> Self {
        assert!(range.size() >= 0x20, "stack window must hold 8 registers");
        assert!(capacity > 0, "stack capacity must be non-zero");
        HwStackSlave {
            config: SlaveConfig::new(range, waits, AccessRights::RW),
            width,
            capacity,
            values: Vec::with_capacity(capacity),
            staged_in: 0,
            lanes_written: 0,
            staged_out: 0,
            lanes_read: 0,
            overflow: false,
            underflow: false,
            pushes: 0,
            pops: 0,
        }
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.values.len()
    }

    /// Completed pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Completed pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// The stored values bottom-to-top (inspection aid).
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Lane mask for an access at byte offset `lane` of this interface
    /// width.
    fn lane_mask(&self, lane: u32) -> u8 {
        match self.width {
            DataWidth::W8 => 1 << lane,
            DataWidth::W16 => 0b11 << lane,
            DataWidth::W32 => 0b1111,
        }
    }

    fn handle_push_lane(&mut self, lane: u32, data: u32) -> SlaveReply<()> {
        let mask = self.lane_mask(lane);
        let bitmask: u32 = (0..4)
            .filter(|b| mask & (1 << b) != 0)
            .map(|b| 0xFFu32 << (8 * b))
            .sum();
        self.staged_in = (self.staged_in & !bitmask) | (data & bitmask);
        self.lanes_written |= mask;
        if self.lanes_written == 0b1111 {
            self.lanes_written = 0;
            if self.values.len() >= self.capacity {
                self.overflow = true;
                return SlaveReply::Error;
            }
            self.values.push(self.staged_in as i32);
            self.pushes += 1;
        }
        SlaveReply::Ok(())
    }

    fn handle_pop_lane(&mut self, lane: u32) -> SlaveReply<u32> {
        if self.lanes_read == 0 {
            match self.values.last() {
                Some(&top) => self.staged_out = top as u32,
                None => {
                    self.underflow = true;
                    return SlaveReply::Error;
                }
            }
        }
        self.lanes_read |= self.lane_mask(lane);
        let out = self.staged_out;
        if self.lanes_read == 0b1111 {
            self.lanes_read = 0;
            self.values.pop();
            self.pops += 1;
        }
        SlaveReply::Ok(out)
    }

    fn decode(&self, addr: Address) -> Option<(u64, u32)> {
        let off = self.config.range.offset_of(addr)?;
        let limit = regs::WINDOW + 4 * regs::WINDOW_WORDS;
        if off >= limit {
            return None;
        }
        let reg = off & !0x3;
        // The whole burst window acts as one FIFO port.
        let reg = if reg >= regs::WINDOW {
            regs::WINDOW
        } else {
            reg
        };
        Some((reg, (off & 0x3) as u32))
    }

    /// Word-width FIFO-window push (burst beats are always full words).
    fn window_push(&mut self, data: u32) -> SlaveReply<()> {
        if self.values.len() >= self.capacity {
            self.overflow = true;
            return SlaveReply::Error;
        }
        self.values.push(data as i32);
        self.pushes += 1;
        SlaveReply::Ok(())
    }

    fn window_pop(&mut self) -> SlaveReply<u32> {
        match self.values.pop() {
            Some(v) => {
                self.pops += 1;
                SlaveReply::Ok(v as u32)
            }
            None => {
                self.underflow = true;
                SlaveReply::Error
            }
        }
    }
}

impl TlmSlave for HwStackSlave {
    fn config(&self) -> SlaveConfig {
        self.config
    }

    fn read_word(&mut self, addr: Address) -> SlaveReply<u32> {
        let Some((reg, lane)) = self.decode(addr) else {
            return SlaveReply::Error;
        };
        match reg {
            regs::WINDOW => self.window_pop(),
            regs::DATA | regs::POP => self.handle_pop_lane(lane),
            regs::STATUS => {
                let mut s = self.values.len() as u32 & 0xFFFF;
                if self.overflow {
                    s |= status::OVERFLOW;
                }
                if self.underflow {
                    s |= status::UNDERFLOW;
                }
                SlaveReply::Ok(s)
            }
            regs::TOP => match self.values.last() {
                Some(&top) => SlaveReply::Ok(top as u32),
                None => {
                    self.underflow = true;
                    SlaveReply::Error
                }
            },
            regs::CTRL | regs::PUSH => SlaveReply::Ok(0),
            _ => SlaveReply::Error,
        }
    }

    fn write_word(&mut self, addr: Address, data: u32, _ben: u8) -> SlaveReply<()> {
        let Some((reg, lane)) = self.decode(addr) else {
            return SlaveReply::Error;
        };
        match reg {
            regs::WINDOW => self.window_push(data),
            regs::DATA | regs::PUSH => self.handle_push_lane(lane, data),
            regs::CTRL => {
                if data & 1 != 0 {
                    self.values.clear();
                    self.overflow = false;
                    self.underflow = false;
                    self.lanes_written = 0;
                    self.lanes_read = 0;
                }
                SlaveReply::Ok(())
            }
            regs::STATUS | regs::POP | regs::TOP => SlaveReply::Ok(()),
            _ => SlaveReply::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x8000;

    fn stack(width: DataWidth) -> HwStackSlave {
        HwStackSlave::new(
            AddressRange::new(Address::new(BASE), 0x100),
            width,
            8,
            WaitProfile::ZERO,
        )
    }

    fn a(off: u64) -> Address {
        Address::new(BASE + off)
    }

    #[test]
    fn w32_push_pop_single_access() {
        let mut s = stack(DataWidth::W32);
        // Lane data arrives as the full bus word.
        assert_eq!(
            s.write_word(a(regs::DATA), 0x1234_5678, 0b1111),
            SlaveReply::Ok(())
        );
        assert_eq!(s.depth(), 1);
        assert_eq!(s.read_word(a(regs::DATA)), SlaveReply::Ok(0x1234_5678));
        assert_eq!(s.depth(), 0);
        assert_eq!((s.pushes(), s.pops()), (1, 1));
    }

    #[test]
    fn w8_push_assembles_from_four_lanes() {
        let mut s = stack(DataWidth::W8);
        // Byte k travels on lane k of the bus word (merge pattern).
        for k in 0..4u64 {
            let byte = 0x11 * (k as u32 + 1);
            let word = byte << (8 * k);
            assert_eq!(s.write_word(a(k), word, 1 << k), SlaveReply::Ok(()));
        }
        assert_eq!(s.depth(), 1);
        assert_eq!(s.values(), &[0x4433_2211]);
    }

    #[test]
    fn w8_pop_delivers_lanes_and_pops_on_last() {
        let mut s = stack(DataWidth::W8);
        s.write_word(a(regs::DATA), u32::MAX, 0b1111); // stage all lanes? no:
                                                       // width is W8, so the above only wrote lane 0 — finish the push.
        for k in 1..4u64 {
            s.write_word(a(k), u32::MAX, 1 << k);
        }
        assert_eq!(s.depth(), 1);
        for k in 0..3u64 {
            assert_eq!(s.read_word(a(k)), SlaveReply::Ok(u32::MAX));
            assert_eq!(s.depth(), 1, "must not pop before the last lane");
        }
        assert_eq!(s.read_word(a(3)), SlaveReply::Ok(u32::MAX));
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn w16_uses_two_lanes() {
        let mut s = stack(DataWidth::W16);
        s.write_word(a(0), 0x0000_BEEF, 0b0011);
        assert_eq!(s.depth(), 0);
        s.write_word(a(2), 0xDEAD_0000, 0b1100);
        assert_eq!(s.values(), &[0xDEAD_BEEFu32 as i32]);
    }

    #[test]
    fn overflow_errors_and_sets_sticky_flag() {
        let mut s = HwStackSlave::new(
            AddressRange::new(Address::new(BASE), 0x100),
            DataWidth::W32,
            1,
            WaitProfile::ZERO,
        );
        s.write_word(a(regs::DATA), 1, 0b1111);
        assert_eq!(s.write_word(a(regs::DATA), 2, 0b1111), SlaveReply::Error);
        let SlaveReply::Ok(st) = s.read_word(a(regs::STATUS)) else {
            panic!("status must read");
        };
        assert!(st & status::OVERFLOW != 0);
        assert_eq!(st & 0xFFFF, 1);
    }

    #[test]
    fn underflow_errors() {
        let mut s = stack(DataWidth::W32);
        assert_eq!(s.read_word(a(regs::DATA)), SlaveReply::Error);
        let SlaveReply::Ok(st) = s.read_word(a(regs::STATUS)) else {
            panic!("status must read");
        };
        assert!(st & status::UNDERFLOW != 0);
    }

    #[test]
    fn top_is_non_destructive() {
        let mut s = stack(DataWidth::W32);
        s.write_word(a(regs::PUSH), 7, 0b1111);
        assert_eq!(s.read_word(a(regs::TOP)), SlaveReply::Ok(7));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = stack(DataWidth::W32);
        s.write_word(a(regs::PUSH), 7, 0b1111);
        let _ = s.read_word(a(regs::POP));
        let _ = s.read_word(a(regs::POP)); // underflow
        s.write_word(a(regs::CTRL), 1, 0b1111);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.read_word(a(regs::STATUS)), SlaveReply::Ok(0));
    }
}
