//! The Java Card VM case study (§4.3 of the paper).
//!
//! The paper demonstrates its energy-aware TLM bus as the vehicle for
//! HW/SW-interface exploration: a *functional, untimed* Java Card VM
//! model (bytecode interpreter, memory manager, firewall, stack) is
//! refined so that the interpreter talks to a **hardware stack** through
//! a master adapter → TLM bus → slave adapter chain, and the explored
//! variables are "the address map, organization of these [special
//! function] registers and used bus transactions to access them".
//!
//! This crate is that whole pipeline:
//!
//! * [`bytecode`], [`interp`] — a Java Card bytecode subset and its
//!   interpreter, with [`firewall`] contexts and a [`memory`] manager
//!   for static fields and arrays.
//! * [`stack`] — the operand-stack interface ([`stack::OperandStack`])
//!   and the pure-software [`stack::SoftStack`] of the unrefined model
//!   (Fig. 7a).
//! * [`hwstack`] — the hardware stack as a bus slave (the slave adapter
//!   plus the stack itself, Fig. 7b right).
//! * [`adapter`] — the master adapter implementing
//!   [`stack::OperandStack`] by issuing bus transactions per an
//!   [`adapter::IfaceConfig`].
//! * [`explore`](mod@explore) — the exploration driver: every interface configuration
//!   × workload, measured in cycles and layer-1 energy.
//! * [`workloads`] — the benchmark applets (arithmetic loop, recursive
//!   calls, array checksum, crypto-style bit mixing).

//! # Example
//!
//! ```
//! use hierbus_jcvm::{Bytecode, Interpreter, Method, SoftStack};
//!
//! let mut vm = Interpreter::new();
//! let main = vm.add_method(Method::new(
//!     vec![Bytecode::Const(6), Bytecode::Const(7), Bytecode::Imul, Bytecode::Ireturn],
//!     0,
//!     0,
//! ));
//! let mut stack = SoftStack::new(16);
//! assert_eq!(vm.run(main, &[], &mut stack, 1_000), Ok(Some(42)));
//! ```

pub mod adapter;
pub mod bytecode;
pub mod error;
pub mod explore;
pub mod firewall;
pub mod hwstack;
pub mod interp;
pub mod memory;
pub mod stack;
pub mod workloads;

pub use adapter::{BusStack, IfaceConfig, RegOrganization, StatusPolicy};
pub use bytecode::{Bytecode, Method, MethodId};
pub use error::JcvmError;
pub use explore::{
    explore, explore_campaign, explore_matrix, run_config, run_config_reference, ExplorationRow,
    ExploreSession,
};
pub use firewall::{Context, Firewall};
pub use hwstack::HwStackSlave;
pub use interp::Interpreter;
pub use memory::MemoryManager;
pub use stack::{OperandStack, SoftStack};
pub use workloads::Workload;
