//! Power-analysis exposure, estimated before silicon — the smart-card
//! motivation of the paper ("estimation of power consumption over time
//! is important to reduce the probability of a successful power
//! analysis attack").
//!
//! A toy "crypto" routine writes a secret-derived value to the bus once
//! per round. The layer-1 model's cycle-accurate energy profile is then
//! correlated with the Hamming weight of each round's secret byte — a
//! first-order DPA test. A data bus without masking correlates strongly;
//! the same traffic with a masked (re-randomised) representation does
//! not.
//!
//! ```sh
//! cargo run --example power_analysis
//! ```

use hierbus::core::{MemSlave, Tlm1Bus, TlmSystem};
use hierbus::ec::sequences::MasterOp;
use hierbus::ec::{AccessRights, Address, AddressRange, SlaveConfig, WaitProfile};
use hierbus::power::{CharacterizationDb, Layer1EnergyModel, PowerTrace};
use hierbus_obs::{EnergyLedger, SlaveMap};

/// One bus write per secret byte; `mask` re-randomises the data
/// representation (Boolean masking with a fresh mask per round).
fn rounds(secret: &[u8], masked: bool) -> Vec<MasterOp> {
    let mut ops = Vec::new();
    let mut mask_state = 0x5A5A_5A5Au32;
    for (i, &byte) in secret.iter().enumerate() {
        // The unmasked implementation expands the key byte onto the bus.
        let value = u32::from_le_bytes([byte, byte ^ 0xFF, byte, byte]);
        let value = if masked {
            // xorshift the mask forward; the masked share is what travels.
            mask_state ^= mask_state << 13;
            mask_state ^= mask_state >> 17;
            mask_state ^= mask_state << 5;
            value ^ mask_state
        } else {
            value
        };
        ops.push(MasterOp::write(0x1000 + 4 * i as u64, value).after_idle(2));
    }
    ops
}

/// Runs the traffic and returns one energy sample per round plus the
/// attribution ledger of the whole run.
fn trace_per_round(ops: Vec<MasterOp>, n_rounds: usize) -> (PowerTrace, EnergyLedger) {
    let mem = MemSlave::new(SlaveConfig::new(
        AddressRange::new(Address::new(0), 0x1_0000),
        WaitProfile::ZERO,
        AccessRights::RWX,
    ));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, ops);
    let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
    model.enable_trace();
    sys.run(1_000_000, |bus: &mut Tlm1Bus| {
        model.on_frame(bus.last_frame())
    });
    let mut slaves = SlaveMap::new();
    slaves.add(0, 0x1_0000, "card-mem");
    let ledger = model
        .ledger(sys.bus().obs().spans(), &slaves)
        .expect("trace enabled");
    let trace = PowerTrace::from_samples(model.trace().expect("trace enabled").to_vec());
    // Each round occupies exactly 3 cycles (2 idle + 1 active write), so
    // per-round energies are 3-cycle window sums; drop the trailing
    // return-to-idle cycle's partial window.
    let windowed = trace.windowed(3);
    let per_round =
        PowerTrace::from_samples(windowed.samples()[..n_rounds.min(windowed.len())].to_vec());
    (per_round, ledger)
}

fn main() {
    // A deterministic "secret key" with varied Hamming weights.
    let secret: Vec<u8> = (0..64u32)
        .map(|i| (i.wrapping_mul(97).wrapping_add(13) % 256) as u8)
        .collect();
    let weights: Vec<f64> = secret.iter().map(|b| b.count_ones() as f64).collect();

    let (plain, ledger) = trace_per_round(rounds(&secret, false), secret.len());
    let (masked, _) = trace_per_round(rounds(&secret, true), secret.len());

    let r_plain = plain
        .correlation(&weights[..plain.len().min(weights.len())])
        .unwrap_or(0.0);
    let r_masked = masked
        .correlation(&weights[..masked.len().min(weights.len())])
        .unwrap_or(0.0);

    println!("first-order DPA test (Pearson r of round energy vs key-byte weight):");
    println!("  unmasked implementation: r = {r_plain:+.3}");
    println!("  masked implementation:   r = {r_masked:+.3}");
    println!();
    println!("profile statistics:");
    println!("  unmasked: {plain}");
    println!("  masked:   {masked}");
    if let Some((idx, peak)) = plain.peak() {
        println!(
            "  unmasked peak: round {idx} at {peak:.1} pJ (weight {})",
            weights[idx]
        );
    }

    assert!(
        r_plain.abs() > 2.0 * r_masked.abs().max(0.05),
        "the unmasked design must leak visibly more than the masked one"
    );
    // Where the attackable energy lives: the attribution ledger ranks
    // the (slave, phase, access-class) buckets of the unmasked run —
    // the write-data bucket carrying the secret dominates.
    println!("\ntop energy buckets (unmasked run, layer-1 attribution):");
    println!("  {:<32} {:>10} {:>7}", "bucket", "pJ", "share");
    let total = ledger.total_pj();
    for (key, pj) in ledger.top(10) {
        println!(
            "  {:<32} {:>10.1} {:>6.1}%",
            key.folded_key(),
            pj,
            100.0 * pj / total
        );
    }

    println!(
        "\nThe unmasked data path leaks the key's Hamming weights into the\n\
         energy profile; masking de-correlates it — and the hierarchical\n\
         model shows this years before a power trace exists in silicon."
    );
}
