//! Multi-master estimation: a CPU instruction mix and a DMA descriptor
//! program contend for one bus behind an arbiter, replayed at every
//! abstraction level — and the layers agree on outcomes, memory, grant
//! lines, and where every joule went, per master.
//!
//! ```sh
//! cargo run --example multi_master
//! ```

use hierbus::ec::sequences::{self, MixParams};
use hierbus::ec::{ArbitrationPolicy, DmaParams, DmaProgram, MultiScenario};
use hierbus::harness::{self, multi};

fn main() {
    println!("characterizing...");
    let db = harness::standard_db();

    // Master 0: a seeded CPU access mix in the low address window.
    let cpu = sequences::random_mix(
        0xCAFE,
        MixParams {
            count: 32,
            ..MixParams::default()
        },
    );
    // Master 1: a seeded DMA descriptor program. Its window sits above
    // the CPU's, so contention changes timing, never final memory.
    let dma = DmaProgram::seeded(
        0xD31A,
        DmaParams {
            descriptors: 10,
            ..DmaParams::default()
        },
    );
    println!(
        "cpu: {} ops; dma: {} descriptors, {} beats\n",
        cpu.ops.len(),
        dma.descriptors.len(),
        dma.total_beats()
    );

    for policy in ArbitrationPolicy::ALL {
        let ms = MultiScenario::new("multi-demo", cpu.clone(), &dma, policy);
        let gate = multi::run_reference(&ms, &db, &[]);
        let l1 = multi::run_layer1(&ms, &db, &[]);
        let l2 = multi::run_layer2(&ms, &db, &[]);

        println!("policy {}:", policy.name());
        for (name, run) in [("gate", &gate), ("layer1", &l1), ("layer2", &l2)] {
            println!(
                "  {name:>6}: {:>3} cycles  {:>8.1} pJ  grants {:?}  contended {}",
                run.cycles, run.energy_pj, run.stats.grants, run.stats.contended_cycles,
            );
        }

        // The cross-layer contract (the full version lives in
        // tests/arbitration_equivalence.rs): identical per-master
        // outcomes and memory everywhere, layer 1 cycle- and
        // grant-exact against the gate-level reference.
        assert_eq!(gate.outcomes(), l1.outcomes());
        assert_eq!(l1.outcomes(), l2.outcomes());
        assert_eq!(gate.memory, l1.memory);
        assert_eq!(l1.memory, l2.memory);
        assert_eq!(gate.cycles, l1.cycles, "layer 1 is cycle-exact");
        assert_eq!(gate.grants, l1.grants, "grant lines match the RTL");

        // Every joule is attributed to the master that owned the
        // cycle; idle cycles stay untagged.
        print!("  layer-1 energy by master:");
        for (master, pj) in l1.ledger.master_totals() {
            print!("  {} {:.1} pJ", master.as_deref().unwrap_or("(idle)"), pj);
        }
        println!("\n");
    }
    println!("all layers agree under both policies");
}
