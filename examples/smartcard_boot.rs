//! A miniature smart-card boot flow on the full platform: copy a data
//! table from ROM to RAM, checksum it, configure a timer, and transmit
//! the checksum over the UART — all as real MIPS code fetching over the
//! bus, with a layer-1 energy estimate and a VCD waveform of interest.
//!
//! ```sh
//! cargo run --example smartcard_boot
//! ```

use hierbus::core::Tlm1Bus;
use hierbus::ec::Address;
use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
use hierbus::sim::trace::TraceRecorder;
use hierbus::sim::SimTime;
use hierbus::soc::{CpuSystem, Platform, PlatformMap, Program, Reg};

/// Table of words the boot code copies and checksums.
const TABLE: [u32; 8] = [
    0x1111_0001,
    0x2222_0002,
    0x3333_0003,
    0x4444_0004,
    0x5555_0005,
    0x6666_0006,
    0x7777_0007,
    0x8888_0008,
];
const TABLE_ROM: u32 = PlatformMap::ROM_BASE + 0x1000;
const TABLE_RAM: u32 = PlatformMap::RAM_BASE + 0x100;

fn boot_program() -> Vec<u32> {
    let mut p = Program::new(PlatformMap::RESET_PC);
    // Copy loop: T0 = src, T1 = dst, T2 = count.
    p.li(Reg::T0, TABLE_ROM);
    p.li(Reg::T1, TABLE_RAM);
    p.li(Reg::T2, TABLE.len() as u32);
    p.label("copy");
    p.lw(Reg::T3, Reg::T0, 0);
    p.sw(Reg::T3, Reg::T1, 0);
    p.addiu(Reg::T0, Reg::T0, 4);
    p.addiu(Reg::T1, Reg::T1, 4);
    p.addiu(Reg::T2, Reg::T2, -1);
    p.bne(Reg::T2, Reg::ZERO, "copy");
    // Checksum loop over the RAM copy: T4 = xor accumulator.
    p.li(Reg::T1, TABLE_RAM);
    p.li(Reg::T2, TABLE.len() as u32);
    p.li(Reg::T4, 0);
    p.label("sum");
    p.lw(Reg::T3, Reg::T1, 0);
    p.xor(Reg::T4, Reg::T4, Reg::T3);
    p.addiu(Reg::T1, Reg::T1, 4);
    p.addiu(Reg::T2, Reg::T2, -1);
    p.bne(Reg::T2, Reg::ZERO, "sum");
    // Start timer 0 as a 1000-cycle watchdog (auto-reload).
    p.li(Reg::T0, PlatformMap::TIMER_BASE);
    p.li(Reg::T1, 1000);
    p.sw(Reg::T1, Reg::T0, 0x4); // count
    p.sw(Reg::T1, Reg::T0, 0x8); // reload
    p.li(Reg::T1, 0b11); // enable | auto-reload
    p.sw(Reg::T1, Reg::T0, 0x0);
    // Transmit the checksum's four bytes over the UART.
    p.li(Reg::T0, PlatformMap::UART_BASE);
    p.li(Reg::T1, 4); // fast baud for the demo
    p.sw(Reg::T1, Reg::T0, 0x8);
    for shift in [0u8, 8, 16, 24] {
        p.srl(Reg::T3, Reg::T4, shift);
        p.andi(Reg::T3, Reg::T3, 0xFF);
        p.sw(Reg::T3, Reg::T0, 0x0);
    }
    // Drain: poll STATUS until TX idle.
    p.label("drain");
    p.lw(Reg::T3, Reg::T0, 0x4);
    p.andi(Reg::T3, Reg::T3, 0x1);
    p.bne(Reg::T3, Reg::ZERO, "drain");
    p.halt();
    p.assemble().expect("boot program assembles")
}

fn main() {
    let expected: u32 = TABLE.iter().fold(0, |a, w| a ^ w);

    let mut platform = Platform::new();
    platform.load_boot_program(&boot_program());
    platform.rom.load(Address::new(TABLE_ROM as u64), &TABLE);
    let mut bus = platform.into_tlm1();
    bus.enable_frames();
    bus.enable_obs();

    let mut sys = CpuSystem::new(bus, PlatformMap::RESET_PC);
    let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
    model.enable_trace();

    // Record the address bus into a VCD while running.
    let mut vcd = TraceRecorder::new("1ns");
    let ch_addr = vcd.add_channel("a_addr", 36);
    let ch_rdata = vcd.add_channel("r_data", 32);
    let mut cycle = 0u64;
    let report = sys.run_until_halt(1_000_000, |bus: &mut Tlm1Bus| {
        let f = bus.last_frame();
        vcd.sample(SimTime::from_ticks(cycle), ch_addr, f.a_addr);
        vcd.sample(SimTime::from_ticks(cycle), ch_rdata, f.r_data as u64);
        model.on_frame(f);
        cycle += 1;
    });

    assert!(
        report.fault.is_none(),
        "boot must not fault: {:?}",
        report.fault
    );
    assert_eq!(sys.core().reg(Reg::T4), expected, "checksum must match");

    println!("boot completed:");
    println!(
        "  {} instructions, {} cycles (CPI {:.2})",
        report.instructions,
        report.cycles,
        report.cpi()
    );
    println!("  checksum 0x{expected:08x} verified");
    println!("  bus energy estimate: {:.0} pJ", model.total_energy());

    let vcd_text = vcd.to_vcd();
    println!(
        "  VCD waveform: {} change points ({} bytes; pass --write-vcd to save boot.vcd)",
        vcd.change_count(),
        vcd_text.len()
    );
    if std::env::args().any(|a| a == "--write-vcd") {
        std::fs::write("boot.vcd", vcd_text).expect("write boot.vcd");
        println!("  wrote boot.vcd");
    }

    // Peripheral cross-checks.
    let trace = model.trace().expect("trace enabled");
    let busiest = trace
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty trace");
    println!("  busiest bus cycle: {} at {:.1} pJ", busiest.0, busiest.1);

    // Component energy — the paper's announced extension: the UART's
    // transmitted bytes and the running timer show up as dynamic energy.
    let components = hierbus::soc::platform_component_energy(sys.bus(), report.cycles);
    println!("\n{components}");

    // Observability artifacts: every bus transaction of the boot as
    // Perfetto spans with a cumulative energy counter track, plus a
    // metrics CSV covering the run and the peripherals.
    let mut obs = sys.bus().obs().clone();
    let mut total = 0.0;
    for (cycle, e) in trace.iter().enumerate() {
        total += e;
        obs.counter_sample("energy_pj", cycle as u64, total);
    }
    let mut reg = hierbus::obs::MetricsRegistry::new();
    let instructions = reg.counter("boot.instructions");
    reg.add(instructions, report.instructions);
    let cycles = reg.counter("boot.cycles");
    reg.add(cycles, report.cycles);
    hierbus::soc::export_platform_metrics(sys.bus(), &mut reg);

    let dir = hierbus::observe::default_dir();
    std::fs::create_dir_all(&dir).expect("create results/obs");
    let trace_path = dir.join("smartcard_boot.trace.json");
    hierbus::obs::perfetto::save(&trace_path, std::slice::from_ref(&obs))
        .expect("write boot trace");
    let snapshot = reg.snapshot();
    let csv_path = dir.join("smartcard_boot.metrics.csv");
    hierbus::obs::save_csv(&csv_path, &snapshot).expect("write boot metrics");
    let prom_path = dir.join("smartcard_boot.metrics.prom");
    std::fs::write(&prom_path, hierbus::obs::prometheus_text(&snapshot))
        .expect("write boot exposition");
    println!("\nObservability artifacts:");
    println!("  {} ({} spans)", trace_path.display(), obs.span_count());
    println!("  {}", csv_path.display());
    println!("  {}", prom_path.display());
}
