//! HW/SW interface exploration for the Java Card VM (paper §4.3),
//! example-sized: four interface candidates, all workloads, ranked by
//! energy.
//!
//! ```sh
//! cargo run --example jcvm_exploration
//! ```

use hierbus::ec::DataWidth;
use hierbus::jcvm::workloads::standard_workloads;
use hierbus::jcvm::{explore, IfaceConfig, RegOrganization, StatusPolicy};
use hierbus::power::CharacterizationDb;

const STACK_BASE: u64 = 0x8000;

fn main() {
    // Example-sized characterization: the uniform database (1 pJ/toggle)
    // keeps this fast; the bench binary `explore_jcvm` uses the full
    // gate-level characterization instead.
    let db = CharacterizationDb::uniform();

    let candidates = vec![
        IfaceConfig::baseline(STACK_BASE),
        IfaceConfig {
            width: DataWidth::W8,
            ..IfaceConfig::baseline(STACK_BASE)
        },
        IfaceConfig {
            organization: RegOrganization::SingleDataReg,
            status_policy: StatusPolicy::EveryPush,
            ..IfaceConfig::baseline(STACK_BASE)
        },
        IfaceConfig {
            slow_window: true,
            width: DataWidth::W16,
            ..IfaceConfig::baseline(STACK_BASE)
        },
    ];
    let workloads = standard_workloads();

    let mut rows = explore(&candidates, &workloads, &db);
    rows.sort_by(|a, b| a.energy_pj.total_cmp(&b.energy_pj));

    println!("interface              workload         cycles   txns   energy(pJ)");
    println!("--------------------------------------------------------------------");
    for row in &rows {
        println!(
            "{:<22} {:<15} {:>7} {:>6} {:>12.0}",
            row.config, row.workload, row.cycles, row.transactions, row.energy_pj
        );
    }

    // Aggregate ranking across workloads.
    println!("\ntotal energy per interface (all workloads):");
    for c in &candidates {
        let total: f64 = rows
            .iter()
            .filter(|r| r.config == c.label())
            .map(|r| r.energy_pj)
            .sum();
        println!("  {:<22} {total:>12.0} pJ", c.label());
    }
    println!(
        "\nEvery run's functional result was checked against the soft-stack\n\
         reference — communication refinement must never change behaviour."
    );
}
