//! Fault injection: replay the same adversarial schedule — a transient
//! slave error, a stall, and a card tear — at every abstraction level,
//! and watch the layers agree on outcomes, committed memory, and what
//! the robustness policy cost.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use hierbus::ec::sequences::{MasterOp, Scenario};
use hierbus::ec::{FaultKind, FaultPlan, OpFault, RetryPolicy, WaitProfile};
use hierbus::harness::{self, fault};

fn main() {
    println!("characterizing...");
    let db = harness::standard_db();

    // A small scripted workload: three single-beat writes.
    let scenario = Scenario {
        name: "fault-demo",
        ops: vec![
            MasterOp::write(0x100, 0x1111_1111),
            MasterOp::write(0x104, 0x2222_2222).after_idle(1),
            MasterOp::write(0x108, 0x3333_3333).after_idle(2),
        ]
        .into(),
        waits: WaitProfile::new(1, 2, 2),
    };

    // The adversarial schedule: op 1 answers its first attempt with a
    // slave error (a retry succeeds), op 2 stalls 4 extra cycles. Plans
    // key on the op's position in the stimulus, so the identical plan
    // replays at every layer.
    let plan = FaultPlan::new()
        .with_fault(1, OpFault::once(FaultKind::SlaveError))
        .with_fault(2, OpFault::always(FaultKind::Stall(4)));
    // Master-side robustness: up to 3 retries, 2/4/8-cycle backoff.
    let policy = RetryPolicy::retries(3);

    println!("plan: {plan}\n");
    let gate = fault::run_reference(&scenario, &plan, policy);
    let l1 = fault::run_layer1(&scenario, &db, &plan, policy);
    let l2 = fault::run_layer2(&scenario, &db, &plan, policy);

    for (name, run) in [("gate", &gate), ("layer1", &l1), ("layer2", &l2)] {
        println!(
            "{name:>6}: {:>3} cycles  {:>7.1} pJ  outcomes {:?}  retried {}",
            run.cycles,
            run.energy_pj,
            run.outcomes
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>(),
            run.counters.retried,
        );
    }
    // The differential contract: identical outcomes and memory.
    assert_eq!(gate.outcomes, l1.outcomes);
    assert_eq!(l1.outcomes, l2.outcomes);
    assert_eq!(gate.memory, l1.memory);
    assert_eq!(l1.memory, l2.memory);
    assert_eq!(gate.cycles, l1.cycles, "layer 1 is cycle-exact");

    // Card tear: stop the clock mid-run. Unfinished ops abort, and all
    // layers still agree on what reached memory.
    let torn = FaultPlan::new().with_tear(gate.cycles / 2);
    let t_gate = fault::run_reference(&scenario, &torn, policy);
    let t_l1 = fault::run_layer1(&scenario, &db, &torn, policy);
    println!(
        "\ntear@{}: outcomes {:?}, {} words committed ({} in the full run)",
        gate.cycles / 2,
        t_gate
            .outcomes
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>(),
        t_gate.memory.len(),
        gate.memory.len(),
    );
    assert_eq!(t_gate.memory, t_l1.memory);
    assert!(t_gate.energy_pj <= gate.energy_pj, "a torn run costs less");
}
