//! Drive the cryptographic coprocessor from a real MIPS program over the
//! bus — the HW/SW interface scenario that motivates the paper.
//!
//! The program loads a key and a plaintext block into the coprocessor's
//! special function registers, starts an encryption, polls the status
//! register until done, and reads the ciphertext back into scratchpad
//! RAM. The run is repeated on the layer-1 and layer-2 buses; results
//! must match the XTEA reference, and the layer-1 run carries an energy
//! estimate.
//!
//! ```sh
//! cargo run --example crypto_coprocessor
//! ```

use hierbus::core::{SlaveReply, Tlm1Bus};
use hierbus::ec::Address;
use hierbus::jcvm; // (unused here; the facade keeps paths uniform)
use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
use hierbus::soc::crypto::{ctrl, xtea_encrypt};
use hierbus::soc::{CpuSystem, Platform, PlatformMap, Program, Reg};

const KEY: [u32; 4] = [0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210];
const BLOCK: [u32; 2] = [0xDEAD_BEEF, 0xCAFE_F00D];
/// RAM address the program stores the ciphertext to.
const RESULT_ADDR: u32 = PlatformMap::RAM_BASE + 0x40;

/// The driver program, in MIPS assembly via the program builder.
fn driver() -> Vec<u32> {
    let mut p = Program::new(PlatformMap::RESET_PC);
    let base = Reg::T0;
    p.li(base, PlatformMap::CRYPTO_BASE);
    // Load the key into KEY0..KEY3 (offsets 0x08..0x14).
    for (i, k) in KEY.iter().enumerate() {
        p.li(Reg::T1, *k);
        p.sw(Reg::T1, base, 0x08 + 4 * i as i16);
    }
    // Load the plaintext into DATA0/DATA1.
    p.li(Reg::T1, BLOCK[0]);
    p.sw(Reg::T1, base, 0x18);
    p.li(Reg::T1, BLOCK[1]);
    p.sw(Reg::T1, base, 0x1C);
    // Start encryption.
    p.li(Reg::T1, ctrl::START_ENC);
    p.sw(Reg::T1, base, 0x00);
    // Poll STATUS until the busy bit clears.
    p.label("poll");
    p.lw(Reg::T2, base, 0x04);
    p.andi(Reg::T2, Reg::T2, 0x1); // BUSY
    p.bne(Reg::T2, Reg::ZERO, "poll");
    // Read the ciphertext and store it to RAM.
    p.li(Reg::T3, RESULT_ADDR);
    p.lw(Reg::T1, base, 0x18);
    p.sw(Reg::T1, Reg::T3, 0);
    p.lw(Reg::T1, base, 0x1C);
    p.sw(Reg::T1, Reg::T3, 4);
    p.halt();
    p.assemble().expect("driver assembles")
}

fn read_result(bus: &mut dyn FnMut(u64) -> u32) -> [u32; 2] {
    [bus(RESULT_ADDR as u64), bus(RESULT_ADDR as u64 + 4)]
}

fn main() {
    let _ = jcvm::Context::JCRE; // facade smoke reference
    let expected = xtea_encrypt(BLOCK, KEY);
    let words = driver();
    println!("driver program: {} instructions", words.len());

    // ---- layer 1, with energy ------------------------------------------
    let mut platform = Platform::new();
    platform.load_boot_program(&words);
    let mut bus = platform.into_tlm1();
    bus.enable_frames();
    let mut sys = CpuSystem::new(bus, PlatformMap::RESET_PC);
    let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
    let report = sys.run_until_halt(1_000_000, |bus: &mut Tlm1Bus| {
        model.on_frame(bus.last_frame());
    });
    assert!(report.fault.is_none(), "driver must not fault");

    let mut peek = |addr: u64| match sys
        .bus_mut()
        .slave_mut(PlatformMap::RAM)
        .read_word(Address::new(addr))
    {
        SlaveReply::Ok(w) => w,
        other => panic!("ram read failed: {other:?}"),
    };
    let got = read_result(&mut peek);
    assert_eq!(
        got, expected,
        "hardware result must match the XTEA reference"
    );

    println!("\nlayer 1:");
    println!(
        "  ciphertext: {:08x} {:08x}  (matches reference)",
        got[0], got[1]
    );
    println!(
        "  {} instructions in {} cycles (CPI {:.2}), {:.0} pJ of bus energy",
        report.instructions,
        report.cycles,
        report.cpi(),
        model.total_energy()
    );

    // ---- layer 2, timing estimation ------------------------------------
    let mut platform = Platform::new();
    platform.load_boot_program(&words);
    let bus = platform.into_tlm2();
    let mut sys2 = CpuSystem::new(bus, PlatformMap::RESET_PC);
    let report2 = sys2.run_until_halt(1_000_000, |_| {});
    assert!(report2.fault.is_none());
    let mut peek2 = |addr: u64| match sys2
        .bus_mut()
        .slave_mut(PlatformMap::RAM)
        .read_word(Address::new(addr))
    {
        SlaveReply::Ok(w) => w,
        other => panic!("ram read failed: {other:?}"),
    };
    assert_eq!(read_result(&mut peek2), expected);

    println!("\nlayer 2:");
    println!(
        "  same ciphertext in {} cycles ({:+.1}% vs layer 1) — the timing\n\
         \x20 estimate a designer would explore interfaces with",
        report2.cycles,
        (report2.cycles as f64 - report.cycles as f64) / report.cycles as f64 * 100.0
    );
}
