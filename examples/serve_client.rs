//! Talk to the estimation daemon over its JSONL protocol — executable
//! protocol documentation.
//!
//! Starts the daemon in-process (same [`Daemon`] the `hierbus-serve`
//! binary runs, driven over in-memory buffers instead of stdin), then
//! submits a small campaign twice: the first submission simulates on
//! the worker pool, the resubmission is answered entirely from the
//! content-addressed result cache with byte-identical result payloads.
//! A `health` probe answers out-of-band (before queued work), a
//! `subscribe` request acks with an immediate telemetry snapshot, a
//! `stats` request shows the cache counters and latency percentiles,
//! and a `shutdown` request drains the session.
//!
//! ```sh
//! cargo run --example serve_client
//! ```

use hierbus::campaign::Json;
use hierbus::ec::MixParams;
use hierbus::power::CharacterizationDb;
use hierbus::serve::{Daemon, DaemonOptions, ScenarioSpec};
use std::io::Cursor;
use std::sync::Arc;

/// Builds one protocol request line (v2 — the daemon still accepts v1
/// clients, which simply never send the telemetry ops).
fn request(id: &str, op: &str, scenarios: Option<&[ScenarioSpec]>) -> String {
    let mut fields = vec![
        ("v".to_owned(), Json::Num(2.0)),
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("op".to_owned(), Json::Str(op.to_owned())),
    ];
    if op == "subscribe" {
        // A deliberately long period: the ack snapshot is immediate, so
        // the example stays deterministic without waiting a tick out.
        fields.push(("every_ms".to_owned(), Json::Num(60_000.0)));
    }
    if let Some(specs) = scenarios {
        fields.push((
            "scenarios".to_owned(),
            Json::Arr(specs.iter().map(ScenarioSpec::to_json).collect()),
        ));
    }
    Json::Obj(fields).to_string_compact()
}

fn main() {
    let daemon = Daemon::new(
        Arc::new(CharacterizationDb::uniform()),
        DaemonOptions {
            workers: 2,
            ..DaemonOptions::default()
        },
    );

    // The campaign: two canned scenarios plus a seeded random mix.
    let specs = vec![
        ScenarioSpec::Named {
            name: "burst_reads".to_owned(),
        },
        ScenarioSpec::Named {
            name: "write_after_read".to_owned(),
        },
        ScenarioSpec::Mix {
            seed: 42,
            params: MixParams {
                count: 200,
                ..MixParams::default()
            },
            waits: None,
        },
    ];

    // First session: a liveness probe, a telemetry subscription, the
    // cold run, the warm resubmission and a stats probe, then hang up
    // (EOF drains the queue completely). `health` is answered by the
    // reader thread the moment it arrives — even mid-batch — and the
    // subscription acks with an immediate `snapshot` event carrying the
    // same rolling-window aggregates as `stats`.
    let script = [
        request("alive", "health", None),
        request("watch", "subscribe", None),
        request("cold", "run", Some(&specs)),
        request("warm", "run", Some(&specs)),
        request("stats", "stats", None),
    ]
    .join("\n");

    println!("--- client sends ---");
    for line in script.lines() {
        println!("> {line}");
    }

    let mut output = Vec::new();
    let summary = daemon
        .serve(Cursor::new(script), &mut output)
        .expect("in-memory session");

    println!("\n--- daemon streams back ---");
    let streamed = String::from_utf8(output).expect("utf-8 protocol");
    for line in streamed.lines() {
        println!("< {line}");
    }
    assert!(
        streamed.contains(r#""event":"health""#) && streamed.contains(r#""status":"ok""#),
        "the health probe answers ok on a live daemon"
    );
    assert!(
        streamed.contains(r#""event":"snapshot""#),
        "the subscription acks with an immediate snapshot"
    );

    println!(
        "\nsession: {} requests, {} results, {} cache hits, {} misses",
        summary.requests, summary.results, summary.cache_hits, summary.cache_misses
    );
    assert_eq!(
        summary.cache_hits as usize,
        specs.len(),
        "the resubmission must be served from cache"
    );
    println!("the \"warm\" run answered every scenario from cache — no worker touched.");

    // Second session, same daemon (the cache survives across
    // sessions): a lone shutdown request drains and says bye.
    let script = request("shutdown", "shutdown", None);
    println!("\n--- client sends ---");
    println!("> {script}");
    let mut output = Vec::new();
    let summary = daemon
        .serve(Cursor::new(script), &mut output)
        .expect("shutdown session");
    println!("--- daemon streams back ---");
    for line in String::from_utf8(output).expect("utf-8 protocol").lines() {
        println!("< {line}");
    }
    assert!(summary.shutdown, "the daemon acknowledged the shutdown");
}
