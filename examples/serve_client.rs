//! Talk to the estimation daemon over its JSONL protocol — executable
//! protocol documentation.
//!
//! Starts the daemon in-process (same [`Daemon`] the `hierbus-serve`
//! binary runs, driven over in-memory buffers instead of stdin), then
//! submits a small campaign twice: the first submission simulates on
//! the worker pool, the resubmission is answered entirely from the
//! content-addressed result cache with byte-identical result payloads.
//! A `stats` request shows the cache counters and latency percentiles,
//! and a `shutdown` request drains the session.
//!
//! ```sh
//! cargo run --example serve_client
//! ```

use hierbus::campaign::Json;
use hierbus::ec::MixParams;
use hierbus::power::CharacterizationDb;
use hierbus::serve::{Daemon, DaemonOptions, ScenarioSpec};
use std::io::Cursor;
use std::sync::Arc;

/// Builds one protocol request line.
fn request(id: &str, op: &str, scenarios: Option<&[ScenarioSpec]>) -> String {
    let mut fields = vec![
        ("v".to_owned(), Json::Num(1.0)),
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("op".to_owned(), Json::Str(op.to_owned())),
    ];
    if let Some(specs) = scenarios {
        fields.push((
            "scenarios".to_owned(),
            Json::Arr(specs.iter().map(ScenarioSpec::to_json).collect()),
        ));
    }
    Json::Obj(fields).to_string_compact()
}

fn main() {
    let daemon = Daemon::new(
        Arc::new(CharacterizationDb::uniform()),
        DaemonOptions {
            workers: 2,
            ..DaemonOptions::default()
        },
    );

    // The campaign: two canned scenarios plus a seeded random mix.
    let specs = vec![
        ScenarioSpec::Named {
            name: "burst_reads".to_owned(),
        },
        ScenarioSpec::Named {
            name: "write_after_read".to_owned(),
        },
        ScenarioSpec::Mix {
            seed: 42,
            params: MixParams {
                count: 200,
                ..MixParams::default()
            },
            waits: None,
        },
    ];

    // First session: pipeline the cold run, the warm resubmission and
    // a stats probe, then hang up (EOF drains the queue completely).
    let script = [
        request("cold", "run", Some(&specs)),
        request("warm", "run", Some(&specs)),
        request("stats", "stats", None),
    ]
    .join("\n");

    println!("--- client sends ---");
    for line in script.lines() {
        println!("> {line}");
    }

    let mut output = Vec::new();
    let summary = daemon
        .serve(Cursor::new(script), &mut output)
        .expect("in-memory session");

    println!("\n--- daemon streams back ---");
    for line in String::from_utf8(output).expect("utf-8 protocol").lines() {
        println!("< {line}");
    }

    println!(
        "\nsession: {} requests, {} results, {} cache hits, {} misses",
        summary.requests, summary.results, summary.cache_hits, summary.cache_misses
    );
    assert_eq!(
        summary.cache_hits as usize,
        specs.len(),
        "the resubmission must be served from cache"
    );
    println!("the \"warm\" run answered every scenario from cache — no worker touched.");

    // Second session, same daemon (the cache survives across
    // sessions): a lone shutdown request drains and says bye.
    let script = request("shutdown", "shutdown", None);
    println!("\n--- client sends ---");
    println!("> {script}");
    let mut output = Vec::new();
    let summary = daemon
        .serve(Cursor::new(script), &mut output)
        .expect("shutdown session");
    println!("--- daemon streams back ---");
    for line in String::from_utf8(output).expect("utf-8 protocol").lines() {
        println!("< {line}");
    }
    assert!(summary.shutdown, "the daemon acknowledged the shutdown");
}
