//! Quickstart: run bus traffic through both TLM layers with energy
//! estimation and compare against the gate-level reference.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hierbus::ec::sequences;
use hierbus::harness;

fn main() {
    // 1. Characterize the energy models once, at the gate level, on the
    //    training sequences (paper §3.3). In a real flow this table would
    //    come from a tool like Diesel; here it comes from the synthetic
    //    layer-0 reference.
    println!("characterizing...");
    let db = harness::standard_db();

    // 2. Pick a workload: one of the EC-spec verification scenarios.
    let scenario = sequences::burst_reads();
    println!("scenario: {scenario}\n");

    // 3. Run it at every abstraction level.
    let gate = harness::run_reference(&scenario, false);
    let l1 = harness::run_layer1(&scenario, &db);
    let l2 = harness::run_layer2(&scenario, &db, false);

    println!(
        "gate-level reference: {:>4} cycles  {:>8.1} pJ",
        gate.cycles, gate.energy_pj
    );
    println!(
        "TLM layer 1:          {:>4} cycles  {:>8.1} pJ  ({:+.1}% energy)",
        l1.cycles,
        l1.energy_pj,
        (l1.energy_pj - gate.energy_pj) / gate.energy_pj * 100.0
    );
    println!(
        "TLM layer 2:          {:>4} cycles  {:>8.1} pJ  ({:+.1}% energy)",
        l2.cycles,
        l2.energy_pj,
        (l2.energy_pj - gate.energy_pj) / gate.energy_pj * 100.0
    );

    // 4. Layer 1 supports cycle-accurate profiling: print the profile.
    println!("\nlayer-1 per-cycle energy profile (pJ):");
    for (i, e) in l1.trace.samples().iter().enumerate() {
        println!(
            "  cycle {i:>2}: {e:7.2}  {}",
            "#".repeat((e / 3.0) as usize)
        );
    }

    // 5. The transaction records agree between the models.
    assert_eq!(gate.records.len(), l1.records.len());
    for (a, b) in gate.records.iter().zip(&l1.records) {
        assert_eq!(a, b, "layer 1 must be cycle-exact");
    }
    println!("\nlayer 1 is cycle-exact against the reference on this scenario.");
}
