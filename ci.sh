#!/usr/bin/env bash
# Local CI gate — the same steps the GitHub Actions workflow runs.
# Everything is offline: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> campaign smoke (2 workers, tiny matrix)"
cargo run --release -p hierbus-bench --bin explore_jcvm -- --smoke --workers 2

echo "CI OK"
