#!/usr/bin/env bash
# Local CI gate — the same steps the GitHub Actions workflow runs.
# Everything is offline: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test (SIMD backends, runtime-detected)"
cargo test -q --workspace

echo "==> cargo test (scalar backend forced)"
# The packed layer-1 engine ships a guaranteed-available scalar kernel
# behind the same trait as the SIMD ones; forcing it keeps the fallback
# from rotting on machines where the vector path always wins detection.
HIERBUS_PACKED_BACKEND=scalar cargo test -q --workspace

echo "==> cargo test (simd feature disabled at compile time)"
# Belt and braces for the portability story: hierbus-power must build
# and pass its own suite with no intrinsics compiled at all.
cargo test -q -p hierbus-power --no-default-features

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> campaign smoke (2 workers, tiny matrix)"
cargo run --release -p hierbus-bench --bin explore_jcvm -- --smoke --workers 2

echo "==> arbitration smoke (both policies, DMA on/off, three layers)"
# Cross-layer equivalence gate for the multi-master path: per-master
# outcomes, committed memory, cycle- and grant-exact layer 1, the 1e-9
# energy pin and the per-master ledger partition — once on the detected
# SIMD backend and once on the forced scalar kernel.
cargo run --release -p hierbus-bench --bin arbitration_smoke
HIERBUS_PACKED_BACKEND=scalar cargo run --release -p hierbus-bench --bin arbitration_smoke

echo "==> bench smoke (hot-path differential + scaling regression, release)"
# The perf layer's correctness story: the packed diff must stay
# bit-exact against the bit-loop reference, and 2-worker campaigns must
# not lose throughput (the test skips itself on single-CPU runners).
cargo test --release -q --test energy_hotpath_diff --test campaign_scaling_regression -- --nocapture

echo "==> serve daemon smoke (cold run, cached replay, drain)"
# Pipe a tiny session into the daemon binary: the first run must
# simulate, the identical resubmission must replay from cache, and EOF
# must drain the session cleanly. A second invocation checks that a
# shutdown request is acknowledged with a bye event.
serve_out="$(printf '%s\n' \
  '{"v":1,"id":"a","op":"run","scenarios":[{"kind":"mix","seed":7,"count":50}]}' \
  '{"v":1,"id":"b","op":"run","scenarios":[{"kind":"mix","seed":7,"count":50}]}' \
  | ./target/release/hierbus-serve --workers 2 2>/dev/null)"
echo "$serve_out" | grep -q '"req":"a".*"cached":false' \
  || { echo "serve smoke: first run was not simulated" >&2; exit 1; }
echo "$serve_out" | grep -q '"req":"b".*"cached":true' \
  || { echo "serve smoke: resubmission was not served from cache" >&2; exit 1; }
printf '%s\n' '{"v":1,"id":"q","op":"shutdown"}' \
  | ./target/release/hierbus-serve 2>/dev/null | grep -q '"event":"bye"' \
  || { echo "serve smoke: shutdown was not acknowledged" >&2; exit 1; }

echo "==> serve telemetry smoke (health, snapshot, request trace)"
# The v2 telemetry surface through the real binary: an idle daemon's
# health probe answers ok, a subscription acks with a snapshot, and a
# traced run dumps a non-empty Perfetto trace connected by its trace id.
trace_tmp="$(mktemp -d)"
tel_out="$(printf '%s\n' \
  '{"v":2,"id":"h","op":"health"}' \
  '{"v":2,"id":"sub","op":"subscribe","every_ms":60000}' \
  '{"v":2,"id":"r","op":"run","scenarios":[{"kind":"mix","seed":9,"count":50}]}' \
  '{"v":2,"id":"d","op":"dump-trace"}' \
  | ./target/release/hierbus-serve --workers 2 --trace-dir "$trace_tmp" 2>/dev/null)"
echo "$tel_out" | grep -q '"event":"health".*"status":"ok"' \
  || { echo "serve telemetry smoke: health did not answer ok" >&2; exit 1; }
echo "$tel_out" | grep -q '"event":"snapshot"' \
  || { echo "serve telemetry smoke: subscribe did not ack with a snapshot" >&2; exit 1; }
echo "$tel_out" | grep -q '"event":"done".*"trace":"t1"' \
  || { echo "serve telemetry smoke: run was not traced" >&2; exit 1; }
grep -q '"trace":"t1"' "$trace_tmp"/t1.trace.json \
  || { echo "serve telemetry smoke: dumped trace is empty or disconnected" >&2; exit 1; }
rm -rf "$trace_tmp"

echo "==> serve telemetry gate (traces, event log, exposition)"
# In-process end-to-end validation of the telemetry plane's external
# surfaces: Perfetto trace connectivity, JSONL event-log schema, and the
# Prometheus text exposition's cumulative-bucket arithmetic.
cargo run --release -p hierbus-bench --bin check_telemetry

echo "==> throughput JSON schema gate"
# BENCH_throughput.json must parse and carry the speedup/scaling fields
# the regression tracking depends on.
cargo run --release -p hierbus-bench --bin check_throughput

echo "==> results staleness gate (deterministic tables)"
# Every bin below prints byte-deterministic output (table3_simperf is
# wall-clock based and exempt). Regenerate each and diff against the
# committed results/ copy so a model change can't silently strand the
# published numbers. Refresh with:
#   cargo run --release -p hierbus-bench --bin all_tables
stale_tmp="$(mktemp -d)"
trap 'rm -rf "$stale_tmp"' EXIT
for bin in table1_timing table2_energy fig6_sampling explore_jcvm ablations attribution; do
  ./target/release/"$bin" > "$stale_tmp/$bin.txt" 2>/dev/null
  if ! diff -u "results/$bin.txt" "$stale_tmp/$bin.txt"; then
    echo "results/$bin.txt is stale — regenerate with the all_tables bin" >&2
    exit 1
  fi
done

echo "==> attribution JSON schema gate"
# The attribution bin above rewrote results/obs/attribution_*.json as a
# side effect; validate the schema and fail if the rewrite left the
# committed copies stale.
cargo run --release -p hierbus-bench --bin check_attribution
# Only the attribution artifacts are byte-deterministic; the scaling
# audit and pool-profile traces next to them are wall-clock based and
# exempt from the staleness diff.
if ! git diff --quiet -- 'results/obs/attribution_*'; then
  git --no-pager diff --stat -- 'results/obs/attribution_*' >&2
  echo "results/obs attribution artifacts are stale — commit the regenerated files" >&2
  exit 1
fi

echo "==> scaling audit (profiled smoke campaign, 1/2/4 workers)"
# Runs the bus campaign with the pool profiler on and decomposes the
# efficiency loss; the checker gates the schema and the arithmetic
# contract (loss shares sum to the measured gap). The artifact must
# exist even though its numbers are wall-clock noisy — a missing or
# malformed file fails the gate.
if [ ! -f results/obs/scaling_audit.json ]; then
  echo "results/obs/scaling_audit.json is missing — run the scaling_audit bin and commit it" >&2
  exit 1
fi
cargo run --release -p hierbus-bench --bin scaling_audit -- --smoke
cargo run --release -p hierbus-bench --bin check_scaling_audit

echo "CI OK"
