//! Facade crate re-exporting the whole workspace.
//!
//! `hierbus` reproduces *"Energy Estimation Based on Hierarchical Bus
//! Models for Power-Aware Smart Cards"* (DATE 2004): hierarchical
//! transaction-level models of an EC-like smart-card core bus with
//! energy estimation at every level, validated against a cycle-true
//! signal-level reference with a gate-level power estimator.
//!
//! Start with [`core`] for the bus models, [`power`] for the energy
//! models, [`rtl`] for the reference, [`soc`] for the smart-card
//! platform and [`jcvm`] for the Java Card VM case study.

pub mod harness;
pub mod observe;

pub use hierbus_campaign as campaign;
pub use hierbus_core as core;
pub use hierbus_ec as ec;
pub use hierbus_jcvm as jcvm;
pub use hierbus_obs as obs;
pub use hierbus_power as power;
pub use hierbus_rtl as rtl;
pub use hierbus_serve as serve;
pub use hierbus_sim as sim;
pub use hierbus_soc as soc;
