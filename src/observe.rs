//! Observed experiment runs: every model layer with span collection,
//! cumulative-energy counter tracks, and a metrics registry, exported
//! as a Perfetto/Chrome trace plus a metrics CSV under `results/obs/`.
//!
//! The exported trace lays the same scenario's transactions side by
//! side: one process per layer (`rtl`, `tlm1`, `tlm2`), one thread per
//! protocol phase, and an `energy_pj` counter track per layer fed from
//! the gate-level estimator (RTL), the layer-1 energy model, and the
//! layer-2 phase-event model respectively.
//!
//! Metric names written to the CSV (per layer `L` in `rtl`, `tlm1`,
//! `tlm2`):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `L.txns` | counter | transactions completed |
//! | `L.errors` | counter | transactions completed with a bus error |
//! | `L.cycles` | counter | bus cycles used |
//! | `L.energy_pj` | counter | estimated energy, rounded to whole pJ |
//! | `L.txn_latency_cycles` | histogram | issue→done latency per transaction |

use crate::harness::{scenario_slave, scenario_slave_map, MAX_CYCLES};
use hierbus_core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus_ec::record::TxnRecord;
use hierbus_ec::sequences::Scenario;
use hierbus_obs::{DivergenceAuditor, EnergyLedger, MetricsRegistry, TraceCollector};
use hierbus_power::{CharacterizationDb, Layer1EnergyModel, Layer2EnergyModel};
use hierbus_rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};
use std::path::{Path, PathBuf};

/// Latency histogram bucket bounds (cycles, inclusive upper edges).
const LATENCY_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Name of the per-layer cumulative energy counter track.
const ENERGY_TRACK: &str = "energy_pj";

/// One scenario observed across all three model layers.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Scenario name (used for output file names).
    pub name: String,
    /// Span collectors in layer order: `rtl`, `tlm1`, `tlm2`.
    pub collectors: Vec<TraceCollector>,
    /// Cross-layer metrics (see the module docs for the name table).
    pub metrics: MetricsRegistry,
    /// Energy-attribution ledgers in layer order: `rtl`, `tlm1`,
    /// `tlm2`. Each decomposes (never re-prices) the matching entry of
    /// [`energy_pj`](Self::energy_pj).
    pub ledgers: Vec<EnergyLedger>,
    /// Per-cycle power traces for the cycle-resolved layers `rtl` and
    /// `tlm1` (layer 2 prices whole phases and has none).
    pub power_traces: [Vec<f64>; 2],
    /// Exact model energy totals in layer order: `rtl`, `tlm1`, `tlm2`.
    pub energy_pj: [f64; 3],
}

fn record_layer_metrics(
    reg: &mut MetricsRegistry,
    layer: &str,
    records: &[TxnRecord],
    cycles: u64,
    energy_pj: f64,
) {
    let txns = reg.counter(&format!("{layer}.txns"));
    reg.add(txns, records.len() as u64);
    let errors = reg.counter(&format!("{layer}.errors"));
    reg.add(
        errors,
        records.iter().filter(|r| r.error.is_some()).count() as u64,
    );
    let cyc = reg.counter(&format!("{layer}.cycles"));
    reg.add(cyc, cycles);
    let energy = reg.counter(&format!("{layer}.energy_pj"));
    reg.add(energy, energy_pj.round().max(0.0) as u64);
    let lat = reg.histogram(&format!("{layer}.txn_latency_cycles"), &LATENCY_BOUNDS);
    for r in records {
        if let Some(done) = r.done_cycle {
            reg.observe(lat, done - r.issue_cycle + 1);
        }
    }
}

/// Folds a per-cycle energy trace into a cumulative counter track.
fn cumulative_track(obs: &mut TraceCollector, per_cycle_pj: &[f64]) {
    let mut total = 0.0;
    for (cycle, e) in per_cycle_pj.iter().enumerate() {
        total += e;
        obs.counter_sample(ENERGY_TRACK, cycle as u64, total);
    }
}

/// Runs `scenario` on the RTL reference and both TLM layers with
/// observability on: spans from every layer, energy counter tracks, and
/// the metrics table.
pub fn run_observed(scenario: &Scenario, db: &CharacterizationDb) -> ObservedRun {
    let mut metrics = MetricsRegistry::new();
    let slaves = scenario_slave_map();

    // Cycle-true reference with the gate-level estimator.
    let mem = SimpleMem::new(scenario_slave(scenario));
    let mut rtl = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        GlitchConfig::default(),
    );
    rtl.enable_obs();
    rtl.enable_power_trace();
    let report = rtl.run(MAX_CYCLES);
    let mut rtl_obs = rtl.obs().clone();
    cumulative_track(&mut rtl_obs, rtl.estimator().trace().unwrap_or(&[]));
    let rtl_ledger = rtl
        .estimator()
        .ledger(rtl_obs.spans(), &slaves)
        .expect("power trace enabled above");
    let rtl_trace = rtl.estimator().trace().unwrap_or(&[]).to_vec();
    let rtl_energy = report.energy_pj;
    record_layer_metrics(
        &mut metrics,
        "rtl",
        &report.records,
        report.cycles,
        report.energy_pj,
    );

    // Layer 1 with the frame-diff energy model.
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer1EnergyModel::new(db.clone());
    model.enable_trace();
    let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
        model.on_frame(bus.last_frame());
    });
    let mut l1_obs = sys.bus().obs().clone();
    cumulative_track(&mut l1_obs, model.trace().unwrap_or(&[]));
    let l1_ledger = model
        .ledger(l1_obs.spans(), &slaves)
        .expect("trace enabled above");
    let l1_trace = model.trace().unwrap_or(&[]).to_vec();
    let l1_energy = model.total_energy();
    record_layer_metrics(
        &mut metrics,
        "tlm1",
        &report.records,
        report.cycles,
        model.total_energy(),
    );

    // Layer 2 with the phase-event energy model; energy is sampled at
    // each phase completion (layer 2 has no per-cycle trace).
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    bus.enable_events();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer2EnergyModel::new(db.clone());
    let mut l2_ledger = EnergyLedger::new("tlm2");
    let mut samples: Vec<(u64, f64)> = Vec::new();
    let report = sys.run(MAX_CYCLES, |bus: &mut Tlm2Bus| {
        for ev in bus.drain_events() {
            model.on_event_ledger(&ev, &mut l2_ledger, &slaves);
            samples.push((ev.at_cycle, model.total_energy()));
        }
    });
    l2_ledger.set_cycles(report.cycles);
    let mut l2_obs = sys.bus().obs().clone();
    for (cycle, total) in samples {
        l2_obs.counter_sample(ENERGY_TRACK, cycle, total);
    }
    record_layer_metrics(
        &mut metrics,
        "tlm2",
        &report.records,
        report.cycles,
        model.total_energy(),
    );

    ObservedRun {
        name: scenario.name.to_string(),
        collectors: vec![rtl_obs, l1_obs, l2_obs],
        metrics,
        ledgers: vec![rtl_ledger, l1_ledger, l2_ledger],
        power_traces: [rtl_trace, l1_trace],
        energy_pj: [rtl_energy, l1_energy, model.total_energy()],
    }
}

/// File-system-safe version of a scenario name.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Writes `<dir>/<name>.trace.json` (Perfetto/Chrome trace-event JSON),
/// `<dir>/<name>.metrics.csv`, and `<dir>/<name>.metrics.prom` (the
/// same snapshot in the Prometheus text exposition format the serve
/// daemon's `--metrics-file` uses), creating `dir` as needed. Returns
/// the trace and CSV paths.
///
/// # Errors
///
/// Any I/O error from creating the directory or writing the files.
pub fn export(run: &ObservedRun, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let base = slug(&run.name);
    let trace_path = dir.join(format!("{base}.trace.json"));
    hierbus_obs::perfetto::save(&trace_path, &run.collectors)?;
    let snapshot = run.metrics.snapshot();
    let csv_path = dir.join(format!("{base}.metrics.csv"));
    hierbus_obs::save_csv(&csv_path, &snapshot)?;
    let prom_path = dir.join(format!("{base}.metrics.prom"));
    std::fs::write(&prom_path, hierbus_obs::prometheus_text(&snapshot))?;
    Ok((trace_path, csv_path))
}

/// The conventional output directory for observability artifacts.
pub fn default_dir() -> PathBuf {
    PathBuf::from("results/obs")
}

/// Writes a campaign pool profile as `<dir>/<name>.trace.json` (one
/// Perfetto track per worker) and `<dir>/<name>.metrics.csv`
/// (chunk-latency / phase-duration histograms plus contention
/// counters), creating `dir` as needed. Returns the two paths.
///
/// Unlike every other export in this module the profile is wall-clock
/// based, so these artifacts are diagnostics of *a* run, not golden
/// files.
///
/// # Errors
///
/// Any I/O error from creating the directory or writing the files.
pub fn export_pool_profile(
    profile: &hierbus_obs::PoolProfile,
    dir: &Path,
    name: &str,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let base = slug(name);
    let trace_path = dir.join(format!("{base}.trace.json"));
    std::fs::write(&trace_path, profile.to_perfetto())?;
    let csv_path = dir.join(format!("{base}.metrics.csv"));
    hierbus_obs::save_csv(&csv_path, &profile.metrics())?;
    Ok((trace_path, csv_path))
}

fn delta_json(d: &Option<hierbus_obs::attribution::BucketDelta>) -> String {
    match d {
        None => "null".to_owned(),
        Some(d) => format!(
            r#"{{"slave":"{}","phase":"{}","class":"{}","a_pj":{},"b_pj":{}}}"#,
            d.key.slave,
            d.key.phase.name(),
            d.key.class_name(),
            d.a_pj,
            d.b_pj
        ),
    }
}

fn trace_div_json(d: &Option<hierbus_obs::TraceDivergence>) -> String {
    match d {
        None => "null".to_owned(),
        Some(d) => {
            let spans: Vec<String> = d
                .context
                .iter()
                .map(|s| {
                    format!(
                        r#"{{"trace_id":{},"phase":"{}","class":"{}","begin":{},"end":{}}}"#,
                        s.trace_id,
                        s.phase.name(),
                        s.class.name(),
                        s.begin,
                        s.end
                    )
                })
                .collect();
            format!(
                r#"{{"cycle":{},"a_pj":{},"b_pj":{},"context_spans":[{}]}}"#,
                d.cycle,
                d.a_pj,
                d.b_pj,
                spans.join(",")
            )
        }
    }
}

fn audit_json(
    auditor: &DivergenceAuditor,
    a: &EnergyLedger,
    b: &EnergyLedger,
    traces: Option<(&[f64], &[f64], &[hierbus_obs::SpanEvent])>,
) -> String {
    let audit = auditor.audit_ledgers(a, b);
    let trace = traces.and_then(|(ta, tb, spans)| auditor.audit_traces(ta, tb, spans, 8));
    format!(
        r#"{{"checked":{},"divergent":{},"first":{},"worst":{},"trace":{}}}"#,
        audit.checked,
        audit.divergent,
        delta_json(&audit.first),
        delta_json(&audit.worst),
        trace_div_json(&trace)
    )
}

/// Writes `<dir>/attribution_<name>.json` (structured attribution +
/// divergence report) and `<dir>/attribution_<name>.folded`
/// (folded-stack "energy flamegraph" lines for all three layers),
/// creating `dir` as needed. Returns the two paths.
///
/// The divergence section audits RTL↔TLM1 at both the bucket and the
/// per-cycle level (first divergent cycle with a ±8-cycle span context
/// window, using the TLM1 span record) and TLM1↔TLM2 at the bucket
/// level. `auditor` sets the tolerance: the layers differ by design
/// (that is Table 2's point), so pick one matched to the question —
/// tight to localize any modeling gap, loose to flag only regressions.
///
/// # Errors
///
/// Any I/O error from creating the directory or writing the files.
pub fn export_attribution(
    run: &ObservedRun,
    dir: &Path,
    auditor: &DivergenceAuditor,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let base = slug(&run.name);
    let [rtl, tlm1, tlm2] = [&run.ledgers[0], &run.ledgers[1], &run.ledgers[2]];
    let folded_path = dir.join(format!("attribution_{base}.folded"));
    let folded: String = run.ledgers.iter().map(EnergyLedger::folded).collect();
    std::fs::write(&folded_path, folded)?;
    let json_path = dir.join(format!("attribution_{base}.json"));
    let layers: Vec<String> = run.ledgers.iter().map(EnergyLedger::to_json).collect();
    let rtl_tlm1 = audit_json(
        auditor,
        rtl,
        tlm1,
        Some((
            &run.power_traces[0],
            &run.power_traces[1],
            run.collectors[1].spans(),
        )),
    );
    let tlm1_tlm2 = audit_json(auditor, tlm1, tlm2, None);
    let json = format!(
        "{{\"schema_version\":1,\"scenario\":\"{}\",\"layers\":[{}],\
         \"divergence\":{{\"rtl_tlm1\":{},\"tlm1_tlm2\":{}}}}}\n",
        base,
        layers.join(","),
        rtl_tlm1,
        tlm1_tlm2
    );
    std::fs::write(&json_path, json)?;
    Ok((json_path, folded_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use hierbus_ec::sequences;

    #[test]
    fn observed_run_collects_all_layers() {
        let db = harness::standard_db();
        let run = run_observed(&sequences::single_read(false), &db);
        assert_eq!(run.collectors.len(), 3);
        for obs in &run.collectors {
            assert!(obs.span_count() > 0, "layer {} has spans", obs.layer());
            assert_eq!(obs.open_count(), 0, "layer {} leaks spans", obs.layer());
        }
        // One successful transaction = request + address + data on every
        // layer.
        assert_eq!(run.collectors[0].span_count(), 3);
        assert_eq!(run.collectors[1].span_count(), 3);
        assert_eq!(run.collectors[2].span_count(), 3);
        // Energy tracks exist for every layer.
        for obs in &run.collectors {
            assert!(
                obs.counters().iter().any(|t| t.name == ENERGY_TRACK),
                "layer {} has an energy track",
                obs.layer()
            );
        }
        let snap = run.metrics.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "rtl.txns" && *v == 1));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "tlm1.txn_latency_cycles" && h.count == 1));
    }

    #[test]
    fn ledgers_decompose_each_layers_total() {
        let db = harness::standard_db();
        let run = run_observed(&sequences::write_after_read(), &db);
        for (i, ledger) in run.ledgers.iter().enumerate() {
            let total = run.energy_pj[i];
            let err = (ledger.total_pj() - total).abs();
            assert!(
                err <= 1e-9 * total.abs().max(1.0),
                "layer {} ledger {} vs model {}",
                ledger.layer(),
                ledger.total_pj(),
                total
            );
            assert!(ledger.bucket_count() > 0);
        }
        assert_eq!(run.ledgers[0].layer(), "rtl");
        assert_eq!(run.ledgers[2].layer(), "tlm2");
        // Cycle-resolved layers carry their traces for the auditor.
        assert_eq!(run.power_traces[1].len() as u64, run.ledgers[1].cycles());
    }

    #[test]
    fn export_attribution_writes_json_and_folded() {
        let db = harness::standard_db();
        let run = run_observed(&sequences::single_read(false), &db);
        let dir = std::env::temp_dir().join("hierbus_attr_test");
        let auditor = DivergenceAuditor::default();
        let (json_path, folded_path) =
            export_attribution(&run, &dir, &auditor).expect("export writes");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.starts_with("{\"schema_version\":1,\"scenario\":\"single_read\""));
        assert!(json.contains("\"divergence\":{\"rtl_tlm1\":"));
        let folded = std::fs::read_to_string(&folded_path).unwrap();
        // One folded block per layer, every line `stack value`.
        assert!(folded.lines().any(|l| l.starts_with("rtl;")));
        assert!(folded.lines().any(|l| l.starts_with("tlm1;")));
        assert!(folded.lines().any(|l| l.starts_with("tlm2;")));
        for line in folded.lines() {
            assert_eq!(line.split(' ').count(), 2, "folded line: {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_pool_profile_writes_worker_tracks() {
        use hierbus_campaign::{run, CampaignOptions, CampaignPayload, Json, Matrix};
        struct N(u64);
        impl CampaignPayload for N {
            fn to_json(&self) -> Json {
                Json::Num(self.0 as f64)
            }
            fn from_json(json: &Json) -> Option<Self> {
                json.as_u64().map(N)
            }
        }
        let matrix = Matrix::new().axis("i", (0..8).map(|i| i.to_string()));
        let report = run(
            &matrix,
            &CampaignOptions {
                profile: true,
                ..CampaignOptions::with_workers("profile_export", 2)
            },
            |p| N(p.index as u64),
        )
        .unwrap();
        let profile = report.profile.expect("profiling enabled");
        let dir = std::env::temp_dir().join("hierbus_pool_profile_test");
        let (trace, csv) =
            export_pool_profile(&profile, &dir, "pool profile!").expect("export writes");
        assert!(trace.ends_with("pool_profile_.trace.json"));
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(r#""name":"worker 0""#));
        assert!(json.contains(r#""name":"simulate""#));
        let metrics = std::fs::read_to_string(&csv).unwrap();
        assert!(metrics.contains("hist,pool.chunk_latency_ns,"));
        assert!(metrics.contains("counter,pool.workers,count,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_writes_trace_and_csv() {
        let db = harness::standard_db();
        let run = run_observed(&sequences::back_to_back_reads(), &db);
        let dir = std::env::temp_dir().join("hierbus_obs_test");
        let (trace, csv) = export(&run, &dir).expect("export writes");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"C\""));
        let metrics = std::fs::read_to_string(&csv).unwrap();
        assert!(metrics.starts_with("kind,name,field,value\n"));
        assert!(metrics.contains("counter,rtl.txns,count,4\n"));
        // The Prometheus exposition rides alongside, sanitized to the
        // exposition charset.
        let prom = std::fs::read_to_string(csv.with_extension("prom")).unwrap();
        assert!(prom.contains("# TYPE rtl_txns counter\nrtl_txns 4\n"));
        assert!(prom.contains("# TYPE tlm1_txn_latency_cycles histogram\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
