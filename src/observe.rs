//! Observed experiment runs: every model layer with span collection,
//! cumulative-energy counter tracks, and a metrics registry, exported
//! as a Perfetto/Chrome trace plus a metrics CSV under `results/obs/`.
//!
//! The exported trace lays the same scenario's transactions side by
//! side: one process per layer (`rtl`, `tlm1`, `tlm2`), one thread per
//! protocol phase, and an `energy_pj` counter track per layer fed from
//! the gate-level estimator (RTL), the layer-1 energy model, and the
//! layer-2 phase-event model respectively.
//!
//! Metric names written to the CSV (per layer `L` in `rtl`, `tlm1`,
//! `tlm2`):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `L.txns` | counter | transactions completed |
//! | `L.errors` | counter | transactions completed with a bus error |
//! | `L.cycles` | counter | bus cycles used |
//! | `L.energy_pj` | counter | estimated energy, rounded to whole pJ |
//! | `L.txn_latency_cycles` | histogram | issue→done latency per transaction |

use crate::harness::{scenario_slave, MAX_CYCLES};
use hierbus_core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus_ec::record::TxnRecord;
use hierbus_ec::sequences::Scenario;
use hierbus_obs::{MetricsRegistry, TraceCollector};
use hierbus_power::{CharacterizationDb, Layer1EnergyModel, Layer2EnergyModel};
use hierbus_rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};
use std::path::{Path, PathBuf};

/// Latency histogram bucket bounds (cycles, inclusive upper edges).
const LATENCY_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Name of the per-layer cumulative energy counter track.
const ENERGY_TRACK: &str = "energy_pj";

/// One scenario observed across all three model layers.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Scenario name (used for output file names).
    pub name: String,
    /// Span collectors in layer order: `rtl`, `tlm1`, `tlm2`.
    pub collectors: Vec<TraceCollector>,
    /// Cross-layer metrics (see the module docs for the name table).
    pub metrics: MetricsRegistry,
}

fn record_layer_metrics(
    reg: &mut MetricsRegistry,
    layer: &str,
    records: &[TxnRecord],
    cycles: u64,
    energy_pj: f64,
) {
    let txns = reg.counter(&format!("{layer}.txns"));
    reg.add(txns, records.len() as u64);
    let errors = reg.counter(&format!("{layer}.errors"));
    reg.add(
        errors,
        records.iter().filter(|r| r.error.is_some()).count() as u64,
    );
    let cyc = reg.counter(&format!("{layer}.cycles"));
    reg.add(cyc, cycles);
    let energy = reg.counter(&format!("{layer}.energy_pj"));
    reg.add(energy, energy_pj.round().max(0.0) as u64);
    let lat = reg.histogram(&format!("{layer}.txn_latency_cycles"), &LATENCY_BOUNDS);
    for r in records {
        if let Some(done) = r.done_cycle {
            reg.observe(lat, done - r.issue_cycle + 1);
        }
    }
}

/// Folds a per-cycle energy trace into a cumulative counter track.
fn cumulative_track(obs: &mut TraceCollector, per_cycle_pj: &[f64]) {
    let mut total = 0.0;
    for (cycle, e) in per_cycle_pj.iter().enumerate() {
        total += e;
        obs.counter_sample(ENERGY_TRACK, cycle as u64, total);
    }
}

/// Runs `scenario` on the RTL reference and both TLM layers with
/// observability on: spans from every layer, energy counter tracks, and
/// the metrics table.
pub fn run_observed(scenario: &Scenario, db: &CharacterizationDb) -> ObservedRun {
    let mut metrics = MetricsRegistry::new();

    // Cycle-true reference with the gate-level estimator.
    let mem = SimpleMem::new(scenario_slave(scenario));
    let mut rtl = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        GlitchConfig::default(),
    );
    rtl.enable_obs();
    rtl.enable_power_trace();
    let report = rtl.run(MAX_CYCLES);
    let mut rtl_obs = rtl.obs().clone();
    cumulative_track(&mut rtl_obs, rtl.estimator().trace().unwrap_or(&[]));
    record_layer_metrics(
        &mut metrics,
        "rtl",
        &report.records,
        report.cycles,
        report.energy_pj,
    );

    // Layer 1 with the frame-diff energy model.
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer1EnergyModel::new(db.clone());
    model.enable_trace();
    let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
        model.on_frame(bus.last_frame());
    });
    let mut l1_obs = sys.bus().obs().clone();
    cumulative_track(&mut l1_obs, model.trace().unwrap_or(&[]));
    record_layer_metrics(
        &mut metrics,
        "tlm1",
        &report.records,
        report.cycles,
        model.total_energy(),
    );

    // Layer 2 with the phase-event energy model; energy is sampled at
    // each phase completion (layer 2 has no per-cycle trace).
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    bus.enable_events();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer2EnergyModel::new(db.clone());
    let mut samples: Vec<(u64, f64)> = Vec::new();
    let report = sys.run(MAX_CYCLES, |bus: &mut Tlm2Bus| {
        for ev in bus.drain_events() {
            model.on_event(&ev);
            samples.push((ev.at_cycle, model.total_energy()));
        }
    });
    let mut l2_obs = sys.bus().obs().clone();
    for (cycle, total) in samples {
        l2_obs.counter_sample(ENERGY_TRACK, cycle, total);
    }
    record_layer_metrics(
        &mut metrics,
        "tlm2",
        &report.records,
        report.cycles,
        model.total_energy(),
    );

    ObservedRun {
        name: scenario.name.to_string(),
        collectors: vec![rtl_obs, l1_obs, l2_obs],
        metrics,
    }
}

/// File-system-safe version of a scenario name.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Writes `<dir>/<name>.trace.json` (Perfetto/Chrome trace-event JSON)
/// and `<dir>/<name>.metrics.csv`, creating `dir` as needed. Returns
/// the two paths.
///
/// # Errors
///
/// Any I/O error from creating the directory or writing the files.
pub fn export(run: &ObservedRun, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let base = slug(&run.name);
    let trace_path = dir.join(format!("{base}.trace.json"));
    hierbus_obs::perfetto::save(&trace_path, &run.collectors)?;
    let csv_path = dir.join(format!("{base}.metrics.csv"));
    hierbus_obs::save_csv(&csv_path, &run.metrics.snapshot())?;
    Ok((trace_path, csv_path))
}

/// The conventional output directory for observability artifacts.
pub fn default_dir() -> PathBuf {
    PathBuf::from("results/obs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use hierbus_ec::sequences;

    #[test]
    fn observed_run_collects_all_layers() {
        let db = harness::standard_db();
        let run = run_observed(&sequences::single_read(false), &db);
        assert_eq!(run.collectors.len(), 3);
        for obs in &run.collectors {
            assert!(obs.span_count() > 0, "layer {} has spans", obs.layer());
            assert_eq!(obs.open_count(), 0, "layer {} leaks spans", obs.layer());
        }
        // One successful transaction = request + address + data on every
        // layer.
        assert_eq!(run.collectors[0].span_count(), 3);
        assert_eq!(run.collectors[1].span_count(), 3);
        assert_eq!(run.collectors[2].span_count(), 3);
        // Energy tracks exist for every layer.
        for obs in &run.collectors {
            assert!(
                obs.counters().iter().any(|t| t.name == ENERGY_TRACK),
                "layer {} has an energy track",
                obs.layer()
            );
        }
        let snap = run.metrics.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "rtl.txns" && *v == 1));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "tlm1.txn_latency_cycles" && h.count == 1));
    }

    #[test]
    fn export_writes_trace_and_csv() {
        let db = harness::standard_db();
        let run = run_observed(&sequences::back_to_back_reads(), &db);
        let dir = std::env::temp_dir().join("hierbus_obs_test");
        let (trace, csv) = export(&run, &dir).expect("export writes");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"C\""));
        let metrics = std::fs::read_to_string(&csv).unwrap();
        assert!(metrics.starts_with("kind,name,field,value\n"));
        assert!(metrics.contains("counter,rtl.txns,count,4\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
