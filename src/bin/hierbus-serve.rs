//! The resident estimation daemon.
//!
//! Characterizes (or rather, loads the process-wide shared
//! characterization of) the standard database once, then serves
//! estimation requests over the line-delimited JSON protocol of
//! `hierbus_serve::proto` until a `shutdown` request or EOF.
//!
//! ```text
//! hierbus-serve [--workers N] [--cache N] [--cache-index PATH] [--socket PATH]
//!               [--log-level LEVEL] [--trace-dir DIR] [--metrics-file PATH]
//!               [--deadline-ms N]
//! ```
//!
//! Without `--socket`, one session runs over stdin/stdout — the mode
//! `ci.sh` smokes. With `--socket PATH` (Unix only) the daemon binds a
//! Unix domain socket and serves connections sequentially; a client's
//! EOF ends its session and the daemon accepts the next connection,
//! while a `shutdown` request drains, flushes the cache index and
//! exits the daemon.
//!
//! Diagnostics go through the leveled structured event log:
//! `--log-level` (error/warn/info/debug/trace/off, default `warn`)
//! sets both the capture threshold and the stderr mirror, so stderr is
//! quiet in the default configuration unless something is actually
//! wrong. `--trace-dir DIR` turns on request tracing (the last 32
//! requests' Perfetto traces, written by the `dump-trace` op);
//! `--metrics-file PATH` keeps a Prometheus text exposition current;
//! `--deadline-ms` arms the stall watchdog (default 30000, 0 turns it
//! off). See the README's "Operating the daemon" section and
//! `examples/serve_client.rs`.

use hierbus::harness;
use hierbus::serve::{Daemon, DaemonOptions};
use hierbus_obs::telemetry::{EventLog, Level, Value};
use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;

/// Request traces retained for `dump-trace` when `--trace-dir` is set.
const TRACE_RING: usize = 32;

struct Args {
    workers: Option<usize>,
    cache: usize,
    cache_index: Option<PathBuf>,
    socket: Option<PathBuf>,
    log_level: Option<Level>,
    trace_dir: Option<PathBuf>,
    metrics_file: Option<PathBuf>,
    deadline_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: None,
        cache: hierbus::serve::DEFAULT_CACHE_CAPACITY,
        cache_index: None,
        socket: None,
        log_level: Some(Level::Warn),
        trace_dir: None,
        metrics_file: None,
        deadline_ms: 30_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--cache-index" => args.cache_index = Some(PathBuf::from(value("--cache-index")?)),
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--log-level" => {
                let name = value("--log-level")?;
                args.log_level = Level::from_name(&name)
                    .ok_or(format!("--log-level: unknown level {name:?}"))?;
            }
            "--trace-dir" => args.trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--metrics-file" => args.metrics_file = Some(PathBuf::from(value("--metrics-file")?)),
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: hierbus-serve [--workers N] [--cache N] \
                     [--cache-index PATH] [--socket PATH] [--log-level LEVEL] \
                     [--trace-dir DIR] [--metrics-file PATH] [--deadline-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// The binary's own diagnostics: a stderr-only event log at the same
/// threshold as the daemon's, so `--log-level` governs every line this
/// process prints.
fn stderr_log(level: Option<Level>) -> EventLog {
    let mut log = EventLog::disabled("hierbus-serve");
    log.set_stderr(level);
    log
}

#[cfg(unix)]
fn serve_socket(
    daemon: &Daemon,
    log: &mut EventLog,
    path: &std::path::Path,
) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    if log.wants(Level::Info) {
        log.emit(
            Level::Info,
            "listening",
            vec![("socket", Value::from(path.display().to_string()))],
        );
    }
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        let summary = daemon.serve(reader, stream)?;
        if log.wants(Level::Info) {
            log.emit(
                Level::Info,
                "session.done",
                vec![
                    ("requests", Value::from(summary.requests)),
                    ("hits", Value::from(summary.cache_hits)),
                    ("misses", Value::from(summary.cache_misses)),
                ],
            );
        }
        if summary.shutdown {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            let mut log = stderr_log(Some(Level::Error));
            log.emit(Level::Error, "usage", vec![("error", Value::from(e))]);
            return ExitCode::FAILURE;
        }
    };
    let mut log = stderr_log(args.log_level);
    let workers = hierbus_campaign::worker_count(args.workers);
    let daemon = Daemon::new(
        harness::shared_db(),
        DaemonOptions {
            workers,
            cache_capacity: args.cache,
            cache_index: args.cache_index,
            trace_requests: if args.trace_dir.is_some() {
                TRACE_RING
            } else {
                0
            },
            trace_dir: args.trace_dir,
            log_level: args.log_level,
            log_stderr: args.log_level,
            metrics_file: args.metrics_file,
            deadline_ms: args.deadline_ms,
            ..DaemonOptions::default()
        },
    );
    if log.wants(Level::Info) {
        log.emit(
            Level::Info,
            "ready",
            vec![
                ("workers", Value::from(workers)),
                ("cache", Value::from(args.cache)),
                ("db", Value::from(daemon.db_fingerprint())),
            ],
        );
    }

    let result = match &args.socket {
        None => {
            let stdin = BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            daemon.serve(stdin, stdout).map(|summary| {
                if log.wants(Level::Info) {
                    log.emit(
                        Level::Info,
                        "session.done",
                        vec![
                            ("requests", Value::from(summary.requests)),
                            ("hits", Value::from(summary.cache_hits)),
                            ("misses", Value::from(summary.cache_misses)),
                            ("retried", Value::from(summary.retried)),
                        ],
                    );
                }
            })
        }
        Some(path) => {
            #[cfg(unix)]
            {
                serve_socket(&daemon, &mut log, path)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                log.emit(
                    Level::Error,
                    "unsupported",
                    vec![("error", Value::from("--socket requires a Unix platform"))],
                );
                return ExitCode::FAILURE;
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log.emit(
                Level::Error,
                "fatal",
                vec![("error", Value::from(e.to_string()))],
            );
            ExitCode::FAILURE
        }
    }
}
