//! The resident estimation daemon.
//!
//! Characterizes (or rather, loads the process-wide shared
//! characterization of) the standard database once, then serves
//! estimation requests over the line-delimited JSON protocol of
//! `hierbus_serve::proto` until a `shutdown` request or EOF.
//!
//! ```text
//! hierbus-serve [--workers N] [--cache N] [--cache-index PATH] [--socket PATH]
//! ```
//!
//! Without `--socket`, one session runs over stdin/stdout — the mode
//! `ci.sh` smokes. With `--socket PATH` (Unix only) the daemon binds a
//! Unix domain socket and serves connections sequentially; a client's
//! EOF ends its session and the daemon accepts the next connection,
//! while a `shutdown` request drains, flushes the cache index and
//! exits the daemon. See the README's "Running the daemon" section and
//! `examples/serve_client.rs`.

use hierbus::harness;
use hierbus::serve::{Daemon, DaemonOptions};
use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workers: Option<usize>,
    cache: usize,
    cache_index: Option<PathBuf>,
    socket: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: None,
        cache: hierbus::serve::DEFAULT_CACHE_CAPACITY,
        cache_index: None,
        socket: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--cache-index" => args.cache_index = Some(PathBuf::from(value("--cache-index")?)),
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--help" | "-h" => {
                println!(
                    "usage: hierbus-serve [--workers N] [--cache N] \
                     [--cache-index PATH] [--socket PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

#[cfg(unix)]
fn serve_socket(daemon: &Daemon, path: &std::path::Path) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("hierbus-serve: listening on {}", path.display());
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        let summary = daemon.serve(reader, stream)?;
        eprintln!(
            "hierbus-serve: session done ({} requests, {} hits, {} misses)",
            summary.requests, summary.cache_hits, summary.cache_misses
        );
        if summary.shutdown {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hierbus-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let workers = hierbus_campaign::worker_count(args.workers);
    let daemon = Daemon::new(
        harness::shared_db(),
        DaemonOptions {
            workers,
            cache_capacity: args.cache,
            cache_index: args.cache_index,
        },
    );
    eprintln!(
        "hierbus-serve: ready ({workers} workers, cache {} entries, db {})",
        args.cache,
        daemon.db_fingerprint()
    );

    let result = match &args.socket {
        None => {
            let stdin = BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            daemon.serve(stdin, stdout).map(|summary| {
                eprintln!(
                    "hierbus-serve: session done ({} requests, {} hits, {} misses, {} retried)",
                    summary.requests, summary.cache_hits, summary.cache_misses, summary.retried
                );
            })
        }
        Some(path) => {
            #[cfg(unix)]
            {
                serve_socket(&daemon, path)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                eprintln!("hierbus-serve: --socket requires a Unix platform");
                return ExitCode::FAILURE;
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hierbus-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
