//! End-to-end experiment harness: characterize once at the gate level,
//! then run any scenario through the reference and both TLM layers with
//! energy estimation attached — the workflow behind every table and
//! figure of the paper.

use hierbus_core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus_ec::record::TxnRecord;
use hierbus_ec::sequences::{self, MixParams, Scenario};
use hierbus_ec::{AccessKind, AccessRights, Address, AddressRange, SignalClass, SlaveConfig};
use hierbus_power::{
    BatchedLayer1, CharacterizationDb, Layer1EnergyModel, Layer2EnergyModel, PhaseCounts,
    PowerTrace,
};
use hierbus_rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};

/// Cycle ceiling for harness runs; hitting it is a deadlock bug.
pub const MAX_CYCLES: u64 = 50_000_000;

/// The slave window every harness scenario runs against.
pub fn scenario_slave(scenario: &Scenario) -> SlaveConfig {
    SlaveConfig::new(
        AddressRange::new(Address::new(0), 0x2_0000),
        scenario.waits,
        AccessRights::RWX,
    )
}

/// The attribution slave map matching [`scenario_slave`]: every harness
/// scenario talks to one memory window, named `mem` in ledgers.
pub fn scenario_slave_map() -> hierbus_obs::SlaveMap {
    let mut map = hierbus_obs::SlaveMap::new();
    map.add(0, 0x2_0000, "mem");
    map
}

/// Result of a gate-level reference run.
#[derive(Debug, Clone)]
pub struct ReferenceRun {
    /// Bus cycles used.
    pub cycles: u64,
    /// Gate-level energy in pJ.
    pub energy_pj: f64,
    /// Total wire transitions (including glitches).
    pub transitions: u64,
    /// Glitch transitions alone.
    pub glitch_transitions: u64,
    /// Transaction records.
    pub records: Vec<TxnRecord>,
    /// Per-cycle energy trace.
    pub trace: PowerTrace,
}

/// Result of a TLM run with an attached energy model.
#[derive(Debug, Clone)]
pub struct TlmRun {
    /// Bus cycles used.
    pub cycles: u64,
    /// Estimated energy in pJ.
    pub energy_pj: f64,
    /// Transaction records.
    pub records: Vec<TxnRecord>,
    /// Bus-process activations that actually ran.
    pub bus_activations: u64,
    /// Per-cycle energy trace (layer 1 only; empty for layer 2, which
    /// cannot profile cycle-accurately).
    pub trace: PowerTrace,
}

/// Runs a scenario on the cycle-true reference with the gate-level
/// estimator (glitches on unless `ideal_netlist`).
pub fn run_reference(scenario: &Scenario, ideal_netlist: bool) -> ReferenceRun {
    let mem = SimpleMem::new(scenario_slave(scenario));
    let mut sys = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        if ideal_netlist {
            GlitchConfig::off()
        } else {
            GlitchConfig::default()
        },
    );
    sys.enable_power_trace();
    let report = sys.run(MAX_CYCLES);
    let trace = PowerTrace::from_samples(sys.estimator().trace().unwrap_or(&[]).to_vec());
    ReferenceRun {
        cycles: report.cycles,
        energy_pj: report.energy_pj,
        transitions: report.transitions,
        glitch_transitions: report.glitch_transitions,
        records: report.records,
        trace,
    }
}

/// Runs a scenario on the layer-1 bus with the layer-1 energy model,
/// fed through the lane-parallel batched engine
/// ([`BatchedLayer1`]) — bit-identical to the scalar per-frame path by
/// the packed module's exactness contract.
pub fn run_layer1(scenario: &Scenario, db: &CharacterizationDb) -> TlmRun {
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer1EnergyModel::new(db.clone());
    model.enable_trace();
    let mut batched = BatchedLayer1::new(model);
    let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
        batched.on_frame(bus.last_frame());
    });
    let model = batched.finish();
    TlmRun {
        cycles: report.cycles,
        energy_pj: model.total_energy(),
        records: report.records,
        bus_activations: report.bus_activations,
        trace: PowerTrace::from_samples(model.trace().unwrap_or(&[]).to_vec()),
    }
}

/// [`run_layer1`] through the pre-optimization hot path: a fresh model
/// per call, the bit-loop reference diff and per-toggle database
/// lookups. Kept so benchmarks and differential tests can compare the
/// old and new code paths on identical stimulus; must stay
/// observationally identical to [`run_layer1`].
pub fn run_layer1_reference(scenario: &Scenario, db: &CharacterizationDb) -> TlmRun {
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer1EnergyModel::new(db.clone());
    model.enable_trace();
    let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
        model.on_frame_reference(bus.last_frame());
    });
    TlmRun {
        cycles: report.cycles,
        energy_pj: model.total_energy(),
        records: report.records,
        bus_activations: report.bus_activations,
        trace: PowerTrace::from_samples(model.trace().unwrap_or(&[]).to_vec()),
    }
}

/// A reusable layer-1 runner: the energy model (its per-class weight
/// cache, characterization clone and trace allocation) is built once
/// and [`reset`] between scenarios instead of per run. One session
/// replaying a sequence of scenarios produces bit-identical [`TlmRun`]s
/// to calling [`run_layer1`] per scenario — campaign workers hold one
/// session for their whole share of the matrix.
///
/// [`reset`]: Layer1EnergyModel::reset
#[derive(Debug, Clone)]
pub struct Layer1Session {
    engine: BatchedLayer1,
}

impl Layer1Session {
    /// Builds a session over a characterization database.
    pub fn new(db: &CharacterizationDb) -> Self {
        hierbus_obs::profiling::record_db_access();
        let mut model = Layer1EnergyModel::new(db.clone());
        model.enable_trace();
        Layer1Session {
            engine: BatchedLayer1::new(model),
        }
    }

    /// Runs a scenario; equivalent to [`run_layer1`].
    pub fn run(&mut self, scenario: &Scenario) -> TlmRun {
        self.engine.reset();
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        let engine = &mut self.engine;
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            engine.on_frame(bus.last_frame());
        });
        let model = engine.model();
        TlmRun {
            cycles: report.cycles,
            energy_pj: model.total_energy(),
            records: report.records,
            bus_activations: report.bus_activations,
            trace: PowerTrace::from_samples(model.trace().unwrap_or(&[]).to_vec()),
        }
    }
}

/// A single lean (throughput-mode) layer-1 result: the scalar outcome a
/// campaign payload keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeanRun {
    /// Bus cycles used.
    pub cycles: u64,
    /// Estimated energy in pJ.
    pub energy_pj: f64,
}

/// Throughput-mode sibling of [`Layer1Session`]: the reused model keeps
/// no per-cycle trace and the replay keeps no per-transaction records,
/// because a campaign whose payload is only `(cycles, energy)` would
/// build and immediately drop both. Cycles and total energy are
/// bit-identical to [`run_layer1`] on the same scenario — records and
/// tracing are pure observers of the simulation.
#[derive(Debug, Clone)]
pub struct Layer1LeanSession {
    engine: BatchedLayer1,
}

impl Layer1LeanSession {
    /// Builds a lean session over a characterization database.
    pub fn new(db: &CharacterizationDb) -> Self {
        hierbus_obs::profiling::record_db_access();
        Layer1LeanSession {
            engine: BatchedLayer1::new(Layer1EnergyModel::new(db.clone())),
        }
    }

    /// Runs a scenario; cycles and energy equal [`run_layer1`]'s.
    pub fn run(&mut self, scenario: &Scenario) -> LeanRun {
        self.engine.reset();
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        let engine = &mut self.engine;
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            engine.on_frame(bus.last_frame());
        });
        LeanRun {
            cycles: report.cycles,
            energy_pj: engine.model().total_energy(),
        }
    }
}

/// Runs a scenario on the layer-1 bus *without* energy estimation
/// (the Table 3 "without estimation" configuration).
pub fn run_layer1_timing_only(scenario: &Scenario) -> TlmRun {
    let mem = MemSlave::new(scenario_slave(scenario));
    let bus = Tlm1Bus::new(vec![Box::new(mem)]);
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let report = sys.run(MAX_CYCLES, |_| {});
    TlmRun {
        cycles: report.cycles,
        energy_pj: 0.0,
        records: report.records,
        bus_activations: report.bus_activations,
        trace: PowerTrace::new(),
    }
}

/// Runs a scenario on the layer-2 bus with the layer-2 energy model.
pub fn run_layer2(
    scenario: &Scenario,
    db: &CharacterizationDb,
    correlation_correction: bool,
) -> TlmRun {
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
    bus.enable_events();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer2EnergyModel::new(db.clone());
    if correlation_correction {
        model.enable_correlation_correction();
    }
    let report = sys.run(MAX_CYCLES, |bus: &mut Tlm2Bus| {
        for ev in bus.drain_events() {
            model.on_event(&ev);
        }
    });
    TlmRun {
        cycles: report.cycles,
        energy_pj: model.total_energy(),
        records: report.records,
        bus_activations: report.bus_activations,
        trace: PowerTrace::new(),
    }
}

/// Runs a scenario on the layer-2 bus without energy estimation.
pub fn run_layer2_timing_only(scenario: &Scenario) -> TlmRun {
    let mem = MemSlave::new(scenario_slave(scenario));
    let bus = Tlm2Bus::new(vec![Box::new(mem)]);
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let report = sys.run(MAX_CYCLES, |_| {});
    TlmRun {
        cycles: report.cycles,
        energy_pj: 0.0,
        records: report.records,
        bus_activations: report.bus_activations,
        trace: PowerTrace::new(),
    }
}

/// Throughput-mode runners: no per-transaction records, returning the
/// number of transactions completed. These isolate the *bus model* cost
/// that Table 3 measures from the replay harness's bookkeeping.
pub mod perf {
    use super::*;

    /// Layer 1 with the layer-1 energy model attached.
    pub fn layer1(scenario: &Scenario, db: &CharacterizationDb) -> u64 {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        let mut model = Layer1EnergyModel::new(db.clone());
        sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            model.on_frame(bus.last_frame());
        });
        sys.completed()
    }

    /// Layer 1 with the energy model fed through the lane-parallel
    /// batched engine ([`BatchedLayer1`]) on the process-wide active
    /// backend — the `tlm1_packed_kts` benchmark arm.
    pub fn layer1_packed(scenario: &Scenario, db: &CharacterizationDb) -> u64 {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        let mut batched = BatchedLayer1::new(Layer1EnergyModel::new(db.clone()));
        sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            batched.on_frame(bus.last_frame());
        });
        batched.flush();
        sys.completed()
    }

    /// Layer 1 with the energy model driven through the bit-loop
    /// reference diff and per-toggle database lookups — the
    /// pre-optimization hot path, kept so the benchmarks can report the
    /// old-vs-new uplift on identical stimulus.
    pub fn layer1_reference(scenario: &Scenario, db: &CharacterizationDb) -> u64 {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        let mut model = Layer1EnergyModel::new(db.clone());
        sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            model.on_frame_reference(bus.last_frame());
        });
        sys.completed()
    }

    /// Layer 1 with the energy model *and* span observability enabled —
    /// the worst case for instrumentation overhead.
    pub fn layer1_observed(scenario: &Scenario, db: &CharacterizationDb) -> u64 {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        bus.enable_obs();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        let mut model = Layer1EnergyModel::new(db.clone());
        sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            model.on_frame(bus.last_frame());
        });
        sys.completed()
    }

    /// Layer 1 timing only.
    pub fn layer1_timing(scenario: &Scenario) -> u64 {
        let mem = MemSlave::new(scenario_slave(scenario));
        let bus = Tlm1Bus::new(vec![Box::new(mem)]);
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        sys.run(MAX_CYCLES, |_| {});
        sys.completed()
    }

    /// Layer 2 with the layer-2 energy model attached.
    pub fn layer2(scenario: &Scenario, db: &CharacterizationDb) -> u64 {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
        bus.enable_events();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        let mut model = Layer2EnergyModel::new(db.clone());
        sys.run(MAX_CYCLES, |bus: &mut Tlm2Bus| {
            for ev in bus.drain_events() {
                model.on_event(&ev);
            }
        });
        sys.completed()
    }

    /// Layer 2 timing only.
    pub fn layer2_timing(scenario: &Scenario) -> u64 {
        let mem = MemSlave::new(scenario_slave(scenario));
        let bus = Tlm2Bus::new(vec![Box::new(mem)]);
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        sys.run(MAX_CYCLES, |_| {});
        sys.completed()
    }

    /// Layer 3 (untimed message layer) through the cycle bridge.
    pub fn layer3(scenario: &Scenario) -> u64 {
        use hierbus_core::Tlm3Bus;
        let mem = MemSlave::new(scenario_slave(scenario));
        let bus = Tlm3Bus::new(vec![Box::new(mem)]);
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        sys.disable_records();
        sys.run(MAX_CYCLES, |_| {});
        sys.completed()
    }
}

/// Fault-injection runners: the same scenario + [`FaultPlan`] +
/// [`RetryPolicy`] replayed at every abstraction level, with energy
/// attached and the committed memory captured — the differential
/// robustness harness.
///
/// [`FaultPlan`]: hierbus_ec::FaultPlan
/// [`RetryPolicy`]: hierbus_ec::RetryPolicy
pub mod fault {
    use super::*;
    use hierbus_core::HasSlaves;
    use hierbus_ec::{FaultCounters, FaultPlan, RetryPolicy, SlaveId, TxnOutcome};

    /// Result of a faulted run at any layer.
    #[derive(Debug, Clone)]
    pub struct FaultRun {
        /// Bus cycles from cycle 0 through the last completion.
        pub cycles: u64,
        /// Estimated (or gate-level, for the reference) energy in pJ.
        pub energy_pj: f64,
        /// Per-attempt records (one per retry reissue too).
        pub records: Vec<TxnRecord>,
        /// Final per-stimulus-op outcomes.
        pub outcomes: Vec<TxnOutcome>,
        /// Fault/robustness counters.
        pub counters: FaultCounters,
        /// Committed memory: explicitly written `(word_offset, value)`
        /// pairs, sorted.
        pub memory: Vec<(u64, u32)>,
        /// The run ended in a card tear.
        pub torn: bool,
    }

    /// The gate-level reference under a fault plan (glitches off so the
    /// energy number is the deterministic settled-transition cost).
    pub fn run_reference(scenario: &Scenario, plan: &FaultPlan, policy: RetryPolicy) -> FaultRun {
        let mem = SimpleMem::new(scenario_slave(scenario));
        let mut sys = RtlSystem::new(
            scenario.ops.clone(),
            vec![Box::new(mem)],
            PowerConfig::default(),
            GlitchConfig::off(),
        )
        .with_faults(plan.clone(), policy);
        let report = sys.run(MAX_CYCLES);
        let memory = sys
            .slave_as::<SimpleMem>(0)
            .expect("scenario slave is a SimpleMem")
            .snapshot();
        FaultRun {
            cycles: report.cycles,
            energy_pj: report.energy_pj,
            records: report.records,
            outcomes: report.outcomes,
            counters: report.fault,
            memory,
            torn: sys.torn(),
        }
    }

    /// Layer 1 under a fault plan, with the layer-1 energy model: torn
    /// and aborted transactions charge exactly the transitions their
    /// frames actually drove.
    pub fn run_layer1(
        scenario: &Scenario,
        db: &CharacterizationDb,
        plan: &FaultPlan,
        policy: RetryPolicy,
    ) -> FaultRun {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone()).with_faults(plan.clone(), policy);
        let mut batched = BatchedLayer1::new(Layer1EnergyModel::new(db.clone()));
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            batched.on_frame(bus.last_frame());
        });
        let model = batched.finish();
        let memory = sys
            .bus()
            .slave_as::<MemSlave>(SlaveId(0))
            .expect("scenario slave is a MemSlave")
            .snapshot();
        FaultRun {
            cycles: report.cycles,
            energy_pj: model.total_energy(),
            records: report.records,
            outcomes: report.outcomes,
            counters: report.fault,
            memory,
            torn: sys.torn(),
        }
    }

    /// Layer 2 under a fault plan, with the layer-2 energy model: a
    /// phase truncated by the tear is flushed as a partial event and
    /// charged its per-phase average pro-rata.
    pub fn run_layer2(
        scenario: &Scenario,
        db: &CharacterizationDb,
        plan: &FaultPlan,
        policy: RetryPolicy,
    ) -> FaultRun {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
        bus.enable_events();
        let tear_cycle = plan.tear_cycle;
        let mut sys = TlmSystem::new(bus, scenario.ops.clone()).with_faults(plan.clone(), policy);
        let mut model = Layer2EnergyModel::new(db.clone());
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm2Bus| {
            for ev in bus.drain_events() {
                model.on_event(&ev);
            }
        });
        if sys.torn() {
            let at = tear_cycle.expect("torn runs come from a tear plan");
            sys.bus_mut().flush_partial_phases(at);
            for ev in sys.bus_mut().drain_events() {
                model.on_event(&ev);
            }
        }
        let memory = sys
            .bus()
            .slave_as::<MemSlave>(SlaveId(0))
            .expect("scenario slave is a MemSlave")
            .snapshot();
        FaultRun {
            cycles: report.cycles,
            energy_pj: model.total_energy(),
            records: report.records,
            outcomes: report.outcomes,
            counters: report.fault,
            memory,
            torn: sys.torn(),
        }
    }

    /// Final per-transaction statuses, the layer-invariant contract: the
    /// same plan must produce the same list at every abstraction level.
    pub fn statuses(run: &FaultRun) -> Vec<TxnOutcome> {
        run.outcomes.clone()
    }

    /// A layer-1 faulted run with attribution attached: the energy
    /// ledger, the per-cycle trace and the span record, so a clean and
    /// a faulted replay of the same scenario can be fed to the
    /// divergence auditor (ledger-level and cycle-level).
    #[derive(Debug, Clone)]
    pub struct AttributedL1Run {
        pub run: FaultRun,
        pub ledger: hierbus_obs::EnergyLedger,
        pub trace: Vec<f64>,
        pub spans: Vec<hierbus_obs::SpanEvent>,
    }

    /// [`run_layer1`](self::run_layer1) with spans, per-cycle trace and
    /// the attribution ledger collected. An empty [`FaultPlan`] gives
    /// the clean baseline.
    pub fn run_layer1_attributed(
        scenario: &Scenario,
        db: &CharacterizationDb,
        plan: &FaultPlan,
        policy: RetryPolicy,
    ) -> AttributedL1Run {
        let mem = MemSlave::new(scenario_slave(scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_obs();
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone()).with_faults(plan.clone(), policy);
        let mut model = Layer1EnergyModel::new(db.clone());
        model.enable_trace();
        let mut batched = BatchedLayer1::new(model);
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            batched.on_frame(bus.last_frame());
        });
        let model = batched.finish();
        let memory = sys
            .bus()
            .slave_as::<MemSlave>(SlaveId(0))
            .expect("scenario slave is a MemSlave")
            .snapshot();
        let spans = sys.bus().obs().spans().to_vec();
        let ledger = model
            .ledger(&spans, &scenario_slave_map())
            .expect("trace enabled above");
        AttributedL1Run {
            run: FaultRun {
                cycles: report.cycles,
                energy_pj: model.total_energy(),
                records: report.records,
                outcomes: report.outcomes,
                counters: report.fault,
                memory,
                torn: sys.torn(),
            },
            ledger,
            trace: model.trace().unwrap_or(&[]).to_vec(),
            spans,
        }
    }
}

/// Multi-master runners: a CPU scenario and a DMA descriptor program
/// behind one arbiter, replayed at every abstraction level with
/// master-tagged energy attribution — the workhorse behind the
/// arbitration-equivalence suite and multi-master campaigns.
pub mod multi {
    use super::*;
    use hierbus_core::{HasSlaves, MultiMasterSystem};
    use hierbus_ec::dma::master_of_trace;
    use hierbus_ec::{
        ArbiterStats, FaultCounters, FaultPlan, MultiScenario, RetryPolicy, SlaveId, TxnOutcome,
    };
    use hierbus_obs::EnergyLedger;

    /// Trace-id → master-name resolution for CPU+DMA scenarios.
    fn master_of(id: u64) -> Option<&'static str> {
        Some(master_of_trace(id))
    }

    /// Per-master fault attachment for a multi-master run.
    #[derive(Debug, Clone)]
    pub struct MasterFaults {
        /// Master index (0 = CPU, 1 = DMA).
        pub master: usize,
        pub plan: FaultPlan,
        pub policy: RetryPolicy,
    }

    /// Per-master slice of a multi-master run, layer-agnostic so the
    /// equivalence suite compares slices across layers directly.
    #[derive(Debug, Clone)]
    pub struct MasterSlice {
        /// Per-attempt records, in issue order.
        pub records: Vec<TxnRecord>,
        /// Final per-stimulus-op outcomes.
        pub outcomes: Vec<TxnOutcome>,
        /// Fault counters for this master alone.
        pub fault: FaultCounters,
    }

    /// Result of a multi-master run at any layer.
    #[derive(Debug, Clone)]
    pub struct MultiRun {
        /// Bus cycles from cycle 0 through the last completion.
        pub cycles: u64,
        /// The layer's own energy number: gate-level for the
        /// reference, the characterized model's total for the TLM
        /// layers.
        pub energy_pj: f64,
        /// Reference runs only: the layer-1 characterized model's
        /// total over the settled RTL frame log — the number a layer-1
        /// run of the same scenario must reproduce.
        pub l1_frames_energy_pj: Option<f64>,
        /// One slice per master, in master order.
        pub masters: Vec<MasterSlice>,
        /// Grant lines `(cycle, master)` in cycle order.
        pub grants: Vec<(u64, usize)>,
        /// Arbitration statistics.
        pub stats: ArbiterStats,
        /// Committed memory: `(word_offset, value)` pairs, sorted.
        pub memory: Vec<(u64, u32)>,
        /// The run ended in a card tear.
        pub torn: bool,
        /// Master-tagged energy ledger; its untagged + per-master
        /// slices sum to the layer's attributed total.
        pub ledger: EnergyLedger,
    }

    impl MultiRun {
        /// Outcome lists per master — the layer-invariant contract.
        pub fn outcomes(&self) -> Vec<Vec<TxnOutcome>> {
            self.masters.iter().map(|m| m.outcomes.clone()).collect()
        }
    }

    /// The gate-level reference over a CPU+DMA scenario (glitches off,
    /// like the fault harness, so energy is the deterministic settled
    /// cost). The settled frame log is replayed through the layer-1
    /// characterized model for the cross-layer energy pin, and the
    /// span record is attributed per master.
    pub fn run_reference(
        ms: &MultiScenario,
        db: &CharacterizationDb,
        faults: &[MasterFaults],
    ) -> MultiRun {
        let mut sys = RtlSystem::for_multi_scenario(ms);
        sys.set_glitch(GlitchConfig::off());
        sys.enable_frame_log();
        sys.enable_obs();
        for f in faults {
            sys.set_master_faults(f.master, f.plan.clone(), f.policy);
        }
        let report = sys.run(MAX_CYCLES);
        let mut model = Layer1EnergyModel::new(db.clone());
        model.enable_trace();
        let mut batched = BatchedLayer1::new(model);
        for frame in sys.frames().expect("frame log enabled above") {
            batched.on_frame(frame);
        }
        let model = batched.finish();
        let spans = sys.obs().spans().to_vec();
        let ledger = hierbus_obs::attribute_cycles_by_master(
            "rtl",
            &spans,
            model.trace().unwrap_or(&[]),
            &scenario_slave_map(),
            master_of,
        );
        let memory = sys
            .slave_as::<SimpleMem>(0)
            .expect("scenario slave is a SimpleMem")
            .snapshot();
        MultiRun {
            cycles: report.cycles,
            energy_pj: report.energy_pj,
            l1_frames_energy_pj: Some(model.total_energy()),
            masters: report
                .masters
                .iter()
                .map(|m| MasterSlice {
                    records: m.records.clone(),
                    outcomes: m.outcomes.clone(),
                    fault: m.fault,
                })
                .collect(),
            grants: report.grants,
            stats: report.stats,
            memory,
            torn: sys.torn(),
            ledger,
        }
    }

    /// Layer 1 over a CPU+DMA scenario: per-cycle arbitration in front
    /// of the cycle-accurate bus, energy through the lane-parallel
    /// batched engine, spans attributed per master.
    pub fn run_layer1(
        ms: &MultiScenario,
        db: &CharacterizationDb,
        faults: &[MasterFaults],
    ) -> MultiRun {
        let mem = MemSlave::new(scenario_slave(&ms.cpu));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        bus.enable_obs();
        let mut sys = MultiMasterSystem::for_multi(bus, ms);
        for f in faults {
            sys.set_master_faults(f.master, f.plan.clone(), f.policy);
        }
        let mut model = Layer1EnergyModel::new(db.clone());
        model.enable_trace();
        let mut batched = BatchedLayer1::new(model);
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm1Bus| {
            batched.on_frame(bus.last_frame());
        });
        let model = batched.finish();
        let spans = sys.bus().obs().spans().to_vec();
        let ledger = hierbus_obs::attribute_cycles_by_master(
            "tlm1",
            &spans,
            model.trace().unwrap_or(&[]),
            &scenario_slave_map(),
            master_of,
        );
        let memory = sys
            .bus()
            .slave_as::<MemSlave>(SlaveId(0))
            .expect("scenario slave is a MemSlave")
            .snapshot();
        MultiRun {
            cycles: report.cycles,
            energy_pj: model.total_energy(),
            l1_frames_energy_pj: None,
            masters: slices(&report.masters),
            grants: report.grants,
            stats: report.stats,
            memory,
            torn: sys.torn(),
            ledger,
        }
    }

    /// Layer 2 over a CPU+DMA scenario: the same per-cycle arbitration
    /// discipline in front of the event-level bus, so contention is
    /// priced at event granularity; every event is booked into the
    /// master-tagged ledger.
    pub fn run_layer2(
        ms: &MultiScenario,
        db: &CharacterizationDb,
        faults: &[MasterFaults],
    ) -> MultiRun {
        let mem = MemSlave::new(scenario_slave(&ms.cpu));
        let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
        bus.enable_events();
        let mut sys = MultiMasterSystem::for_multi(bus, ms);
        let mut tear_cycle = None;
        for f in faults {
            tear_cycle = tear_cycle.or(f.plan.tear_cycle);
            sys.set_master_faults(f.master, f.plan.clone(), f.policy);
        }
        let mut model = Layer2EnergyModel::new(db.clone());
        let mut ledger = EnergyLedger::new("tlm2");
        let map = scenario_slave_map();
        let report = sys.run(MAX_CYCLES, |bus: &mut Tlm2Bus| {
            for ev in bus.drain_events() {
                model.on_event_ledger_by_master(&ev, &mut ledger, &map, master_of);
            }
        });
        if sys.torn() {
            let at = tear_cycle.expect("torn runs come from a tear plan");
            sys.bus_mut().flush_partial_phases(at);
            for ev in sys.bus_mut().drain_events() {
                model.on_event_ledger_by_master(&ev, &mut ledger, &map, master_of);
            }
        }
        ledger.set_cycles(report.cycles);
        let memory = sys
            .bus()
            .slave_as::<MemSlave>(SlaveId(0))
            .expect("scenario slave is a MemSlave")
            .snapshot();
        MultiRun {
            cycles: report.cycles,
            energy_pj: model.total_energy(),
            l1_frames_energy_pj: None,
            masters: slices(&report.masters),
            grants: report.grants,
            stats: report.stats,
            memory,
            torn: sys.torn(),
            ledger,
        }
    }

    fn slices(masters: &[hierbus_core::MasterReport]) -> Vec<MasterSlice> {
        masters
            .iter()
            .map(|m| MasterSlice {
                records: m.records.clone(),
                outcomes: m.outcomes.clone(),
                fault: m.fault,
            })
            .collect()
    }
}

/// Counts phases/beats from a record set (characterization input).
pub fn phase_counts(records: &[TxnRecord]) -> PhaseCounts {
    let mut counts = PhaseCounts::default();
    for r in records {
        counts.addr_phases += 1;
        if r.error.is_some() {
            continue;
        }
        match r.kind {
            AccessKind::DataWrite => counts.write_beats += r.burst.beats() as u64,
            _ => counts.read_beats += r.burst.beats() as u64,
        }
    }
    counts
}

/// Characterizes the TLM energy models against the gate-level estimator
/// on the given training scenarios: one accumulated per-class
/// energy/transition table plus phase counts.
pub fn characterize(training: &[Scenario]) -> CharacterizationDb {
    let mut energy = [0.0f64; 6];
    let mut transitions = [0u64; 6];
    let mut counts = PhaseCounts::default();
    for scenario in training {
        let mem = SimpleMem::new(scenario_slave(scenario));
        let mut sys = RtlSystem::new(
            scenario.ops.clone(),
            vec![Box::new(mem)],
            PowerConfig::default(),
            GlitchConfig::default(),
        );
        let report = sys.run(MAX_CYCLES);
        for (class, e, t) in sys.estimator().class_stats() {
            energy[class.index()] += e;
            transitions[class.index()] += t;
        }
        let c = phase_counts(&report.records);
        counts.addr_phases += c.addr_phases;
        counts.read_beats += c.read_beats;
        counts.write_beats += c.write_beats;
    }
    let stats: Vec<(SignalClass, f64, u64)> = SignalClass::ALL
        .iter()
        .map(|&c| (c, energy[c.index()], transitions[c.index()]))
        .collect();
    CharacterizationDb::from_class_stats(&stats, counts)
}

/// The standard training set: the spec's training scenarios plus a
/// low-locality random mix, so every signal class is exercised and the
/// averages reflect mixed (weakly correlated) traffic.
pub fn standard_training() -> Vec<Scenario> {
    let mut set = sequences::training_scenarios();
    set.push(sequences::random_mix(
        0xC0FFEE,
        MixParams {
            count: 2_000,
            sequential_pct: 30,
            ..MixParams::default()
        },
    ));
    set
}

/// Characterization over [`standard_training`] — the database the
/// experiments use.
pub fn standard_db() -> CharacterizationDb {
    characterize(&standard_training())
}

/// [`standard_db`], characterized once per process and shared behind an
/// `Arc` — the read-only database campaign workers clone a handle to
/// instead of re-running the gate-level training per scenario.
pub fn shared_db() -> std::sync::Arc<CharacterizationDb> {
    static DB: std::sync::OnceLock<std::sync::Arc<CharacterizationDb>> = std::sync::OnceLock::new();
    std::sync::Arc::clone(DB.get_or_init(|| std::sync::Arc::new(standard_db())))
}

/// Accuracy comparison of both TLM layers against the reference over a
/// scenario set (the Tables 1 & 2 computation).
#[derive(Debug, Clone, Copy, Default)]
pub struct AccuracySummary {
    /// Reference cycles, summed.
    pub ref_cycles: u64,
    /// Layer-1 cycles, summed.
    pub l1_cycles: u64,
    /// Layer-2 cycles, summed.
    pub l2_cycles: u64,
    /// Gate-level energy, summed (pJ).
    pub ref_energy: f64,
    /// Layer-1 estimated energy, summed (pJ).
    pub l1_energy: f64,
    /// Layer-2 estimated energy, summed (pJ).
    pub l2_energy: f64,
}

impl AccuracySummary {
    /// Relative layer-1 timing error (0 expected).
    pub fn l1_cycle_error(&self) -> f64 {
        (self.l1_cycles as f64 - self.ref_cycles as f64) / self.ref_cycles as f64
    }

    /// Relative layer-2 timing error (small positive expected).
    pub fn l2_cycle_error(&self) -> f64 {
        (self.l2_cycles as f64 - self.ref_cycles as f64) / self.ref_cycles as f64
    }

    /// Relative layer-1 energy error (negative expected).
    pub fn l1_energy_error(&self) -> f64 {
        (self.l1_energy - self.ref_energy) / self.ref_energy
    }

    /// Relative layer-2 energy error (positive expected).
    pub fn l2_energy_error(&self) -> f64 {
        (self.l2_energy - self.ref_energy) / self.ref_energy
    }
}

/// Runs all three models over `scenarios` and accumulates the accuracy
/// summary.
pub fn accuracy_summary(scenarios: &[Scenario], db: &CharacterizationDb) -> AccuracySummary {
    let mut s = AccuracySummary::default();
    for scenario in scenarios {
        let r = run_reference(scenario, false);
        let l1 = run_layer1(scenario, db);
        let l2 = run_layer2(scenario, db, false);
        s.ref_cycles += r.cycles;
        s.l1_cycles += l1.cycles;
        s.l2_cycles += l2.cycles;
        s.ref_energy += r.energy_pj;
        s.l1_energy += l1.energy_pj;
        s.l2_energy += l2.energy_pj;
    }
    s
}

/// The evaluation set for the accuracy tables: the full verification
/// suite plus an address-sequential, small-value-data mix — the traffic
/// shape a fetching, stack-juggling smart-card core produces, as opposed
/// to the uniform-random characterization stimulus.
pub fn evaluation_scenarios() -> Vec<Scenario> {
    use hierbus_ec::sequences::DataProfile;
    let mut set = sequences::all_scenarios();
    set.push(sequences::random_mix(
        0xE7A1,
        MixParams {
            count: 2_000,
            read_pct: 55,
            sequential_pct: 85,
            data_profile: DataProfile::SmallValues,
            ..MixParams::default()
        },
    ));
    set
}
