//! The two contracts the campaign pool profiler must keep:
//!
//! 1. **Overhead** — with profiling *off* (the default), the
//!    instrumented engine stays within a loose budget of a bare
//!    best-of-N loop over the same CPU-bound work. A disabled
//!    [`Profiler`](hierbus_obs::Profiler) reduces every probe to one
//!    branch with no clock read, so the engine's fixed costs (thread
//!    spawn, claiming, stats) dominate whatever remains.
//! 2. **Determinism** — profiling is diagnostics only: turning it on
//!    must never change the merged results, at any worker count, and
//!    the profile must be present iff it was requested.

use hierbus_campaign::{
    CampaignOptions, CampaignPayload, CampaignReport, ClaimStrategy, Json, Matrix,
};
use std::time::{Duration, Instant};

const SCENARIOS: usize = 64;
const REPS: usize = 5;
/// Engine wall vs bare loop: generous multiplier + absolute slack, so
/// scheduler noise on a loaded CI runner cannot fail the gate, while a
/// profiler that reads clocks when disabled (≈2 syscalls × 6 phases ×
/// 64 scenarios) still would.
const BUDGET_FACTOR: f64 = 1.5;
const BUDGET_SLACK: Duration = Duration::from_millis(25);

#[derive(Debug)]
struct Digest(u64);

impl CampaignPayload for Digest {
    fn to_json(&self) -> Json {
        Json::Num(self.0 as f64)
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_u64().map(Digest)
    }
}

/// A deterministic CPU-bound unit of work (an LCG churn), heavy enough
/// that per-scenario engine overhead is a small fraction of it.
fn churn(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..400_000u32 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn matrix() -> Matrix {
    Matrix::new().axis("seed", (0..SCENARIOS).map(|i| i.to_string()))
}

fn run(workers: usize, profile: bool) -> CampaignReport<Digest> {
    let opts = CampaignOptions {
        claim: ClaimStrategy::Chunked,
        profile,
        ..CampaignOptions::with_workers("profiling_overhead", workers)
    };
    hierbus_campaign::run_with(
        &matrix(),
        &opts,
        || (),
        |(), point| Digest(churn(point.index as u64)),
    )
    .expect("manifest-less campaign cannot fail on I/O")
}

/// The merged results in comparison form: scenario key + payload, in
/// matrix order.
fn rendered(report: &CampaignReport<Digest>) -> String {
    report
        .completed()
        .map(|(p, r)| format!("{} {:?}\n", p.key, r))
        .collect()
}

fn best_of(mut f: impl FnMut() -> Duration) -> Duration {
    (0..REPS).map(|_| f()).min().expect("REPS >= 1")
}

#[test]
fn disabled_profiler_stays_within_the_overhead_budget() {
    // Bare baseline: the same churn over the same indices, no engine.
    let bare = best_of(|| {
        let t = Instant::now();
        for i in 0..SCENARIOS {
            std::hint::black_box(churn(i as u64));
        }
        t.elapsed()
    });
    // Instrumented engine, profiler disabled (the default path every
    // campaign takes).
    let engine = best_of(|| run(1, false).stats.wall);
    let budget = bare.mul_f64(BUDGET_FACTOR) + BUDGET_SLACK;
    println!(
        "profiler-off overhead: bare loop {bare:.2?}, engine {engine:.2?} \
         (budget {budget:.2?})"
    );
    assert!(
        engine <= budget,
        "disabled-profiler engine run took {engine:.2?}, budget {budget:.2?} \
         (bare loop {bare:.2?})"
    );
}

#[test]
fn profiling_never_changes_the_merged_results() {
    let mut renders = Vec::new();
    for workers in [1, 2, 4] {
        let plain = run(workers, false);
        let profiled = run(workers, true);
        assert!(
            plain.profile.is_none(),
            "{workers} workers: profile attached without being requested"
        );
        let profile = profiled
            .profile
            .as_ref()
            .unwrap_or_else(|| panic!("{workers} workers: requested profile missing"));
        assert_eq!(
            rendered(&plain),
            rendered(&profiled),
            "{workers} workers: profiling changed the merged results"
        );
        assert_eq!(profile.workers.len(), workers);
        // The simulate records across the pool cover exactly the
        // executed scenarios — no scenario is missed or double-timed.
        let simulated: usize = profile
            .workers
            .iter()
            .map(|w| {
                w.records
                    .iter()
                    .filter(|r| r.phase == hierbus_obs::PoolPhase::Simulate)
                    .count()
            })
            .sum();
        assert_eq!(simulated, SCENARIOS);
        renders.push(rendered(&profiled));
    }
    // Byte-identical merged results across 1/2/4 workers, profiled.
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[0], renders[2]);
}

#[test]
fn profiled_run_exports_distinguishable_worker_tracks() {
    let report = run(2, true);
    let profile = report.profile.expect("requested profile missing");
    let trace = profile.to_perfetto();
    for track in ["\"worker 0\"", "\"worker 1\"", "\"engine\""] {
        assert!(trace.contains(track), "trace missing {track} track");
    }
    for phase in ["\"claim\"", "\"simulate\"", "\"serialize\"", "\"merge\""] {
        assert!(trace.contains(phase), "trace missing {phase} events");
    }
}
