//! Differential tests for the layer-1 per-cycle hot path: the
//! word-packed `SignalFrame::diff` (XOR + `count_ones` per class, cached
//! per-class weights) must agree *exactly* — per-class toggle counts and
//! `f64::to_bits` energies — with the bit-loop `diff_reference` path it
//! replaced, over seeded-random frame soups, the layer-1 doctest frames,
//! and the frames a faulted / torn bus actually drives.

use hierbus::ec::sequences::{random_mix, MixParams};
use hierbus::ec::{FaultKind, FaultPlan, OpFault, RetryPolicy, SignalFrame};
use hierbus::harness;
use hierbus::power::Layer1EnergyModel;
use hierbus::sim::SplitMix64;
use hierbus_core::{MemSlave, Tlm1Bus, TlmSystem};

/// A fully randomized frame: every field, including bits outside the
/// architectural widths (the packed path must reproduce the reference's
/// behaviour on out-of-range `a_addr` bits, which the public field
/// permits).
fn random_frame(rng: &mut SplitMix64) -> SignalFrame {
    let bits = rng.next_u64();
    SignalFrame {
        a_valid: bits & 1 != 0,
        a_addr: rng.next_u64(),
        a_kind: rng.next_u32() as u8,
        a_width: rng.next_u32() as u8,
        a_burst: rng.next_u32() as u8,
        a_ready: bits & 2 != 0,
        a_error: bits & 4 != 0,
        r_valid: bits & 8 != 0,
        r_data: rng.next_u32(),
        r_id: rng.next_u32() as u8,
        r_ready: bits & 16 != 0,
        r_error: bits & 32 != 0,
        w_valid: bits & 64 != 0,
        w_data: rng.next_u32(),
        w_ben: rng.next_u32() as u8,
        w_id: rng.next_u32() as u8,
        w_ready: bits & 128 != 0,
        w_error: bits & 256 != 0,
    }
}

/// Replays `frames` through both hot paths and asserts bit-exact
/// agreement of every per-cycle diff and every energy query.
fn assert_paths_agree(frames: &[SignalFrame], context: &str) {
    let db = harness::shared_db();
    let mut fast = Layer1EnergyModel::new((*db).clone());
    let mut slow = Layer1EnergyModel::new((*db).clone());
    fast.enable_trace();
    slow.enable_trace();
    let mut prev = SignalFrame::default();
    for (i, frame) in frames.iter().enumerate() {
        assert_eq!(
            frame.diff(&prev),
            frame.diff_reference(&prev),
            "{context}: diff mismatch at frame {i}"
        );
        fast.on_frame(frame);
        slow.on_frame_reference(frame);
        assert_eq!(
            fast.energy_last_cycle().to_bits(),
            slow.energy_last_cycle().to_bits(),
            "{context}: per-cycle energy diverges at frame {i}"
        );
        prev = *frame;
    }
    assert_eq!(fast.toggles(), slow.toggles(), "{context}: toggle totals");
    assert_eq!(
        fast.total_energy().to_bits(),
        slow.total_energy().to_bits(),
        "{context}: total energy"
    );
    assert_eq!(
        fast.energy_since_last_call().to_bits(),
        slow.energy_since_last_call().to_bits(),
        "{context}: interval energy"
    );
    assert_eq!(fast.trace(), slow.trace(), "{context}: traces");
}

#[test]
fn packed_diff_matches_reference_on_seeded_random_frames() {
    for seed in [0xD1FF_0001u64, 0x5EED_BEEF, 0x0BAD_CAFE, 0x1234_5678] {
        println!("energy_hotpath_diff seed = {seed:#x}");
        let mut rng = SplitMix64::new(seed);
        let frames: Vec<SignalFrame> = (0..512).map(|_| random_frame(&mut rng)).collect();
        assert_paths_agree(&frames, &format!("seed {seed:#x}"));
    }
}

#[test]
fn packed_diff_matches_reference_on_doctest_frames() {
    // The frames the layer-1 doctest and unit tests drive.
    let doc = SignalFrame {
        a_addr: 0xFF,
        ..SignalFrame::default()
    };
    let mut driven = SignalFrame::default();
    driven.drive_address(
        0xF_FFFF_FFFF,
        hierbus::ec::AccessKind::DataWrite,
        hierbus::ec::DataWidth::W32,
        hierbus::ec::BurstLen::B4,
        true,
        false,
    );
    driven.drive_write(0xDEAD_BEEF, 0xF, 3, true, false);
    let frames = [
        doc,
        SignalFrame::default(),
        driven,
        driven.to_idle(),
        SignalFrame::default(),
    ];
    assert_paths_agree(&frames, "doctest frames");
}

#[test]
fn packed_diff_matches_reference_on_fault_and_tear_frames() {
    let scenario = random_mix(
        0xFA57,
        MixParams {
            count: 120,
            read_pct: 50,
            burst_pct: 40,
            ..MixParams::default()
        },
    );
    let plans = [
        (
            "slave error with retries",
            FaultPlan::new().with_fault(1, OpFault::once(FaultKind::SlaveError)),
            RetryPolicy::retries(3),
        ),
        (
            "persistent stall",
            FaultPlan::new().with_fault(0, OpFault::always(FaultKind::Stall(17))),
            RetryPolicy::NONE,
        ),
        (
            "card tear mid-run",
            FaultPlan::new().with_tear(200),
            RetryPolicy::NONE,
        ),
    ];
    for (name, plan, policy) in plans {
        let mem = MemSlave::new(harness::scenario_slave(&scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone()).with_faults(plan.clone(), policy);
        let mut frames = Vec::new();
        sys.run(harness::MAX_CYCLES, |bus: &mut Tlm1Bus| {
            frames.push(*bus.last_frame());
        });
        assert!(!frames.is_empty(), "{name}: no frames captured");
        assert_paths_agree(&frames, name);
    }
}
