//! The serve telemetry plane: request-scoped traces that connect
//! daemon, worker and model-layer spans under one trace id; the
//! watchdog flipping health to degraded on a stalled request; the v2
//! `subscribe`/`health`/`dump-trace` ops; and the zero-cost default
//! (telemetry off leaves no residue in responses).

use hierbus::serve::{Daemon, DaemonOptions};
use hierbus_campaign::Json;
use hierbus_obs::telemetry::Level;
use hierbus_power::CharacterizationDb;
use std::io::Cursor;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn daemon(opts: DaemonOptions) -> Daemon {
    Daemon::new(Arc::new(CharacterizationDb::uniform()), opts)
}

/// Runs one session over in-memory buffers, returning the parsed
/// response events.
fn session(daemon: &Daemon, script: &str) -> Vec<Json> {
    let mut output = Vec::new();
    daemon
        .serve(Cursor::new(script.to_owned()), &mut output)
        .expect("in-memory session");
    String::from_utf8(output)
        .expect("utf-8 output")
        .lines()
        .map(|l| Json::parse(l).expect("every response line is JSON"))
        .collect()
}

fn field<'a>(event: &'a Json, name: &str) -> &'a Json {
    event.get(name).unwrap_or_else(|| panic!("missing {name}"))
}

fn event_name(event: &Json) -> &str {
    field(event, "event").as_str().unwrap()
}

#[test]
fn a_run_request_produces_one_connected_trace() {
    let d = daemon(DaemonOptions {
        workers: 2,
        trace_requests: 8,
        ..DaemonOptions::default()
    });
    let script = concat!(
        r#"{"v":2,"id":"r1","op":"run","scenarios":"#,
        r#"[{"kind":"named","name":"burst_reads"},{"kind":"mix","seed":5,"count":50}]}"#,
    );
    let events = session(&d, script);
    let done = events
        .iter()
        .find(|e| event_name(e) == "done")
        .expect("done event");
    assert_eq!(field(done, "trace").as_str(), Some("t1"));

    let traces = d.request_traces();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.request_id, "r1");
    assert_eq!(trace.trace_id, "t1");
    let json = &trace.json;

    // The daemon track tells the request's whole story in order.
    for name in ["queued", "cache-check", "execute", "serialize"] {
        assert!(json.contains(&format!(r#""name":"{name}""#)), "{name}");
    }
    // Both executed scenarios appear on worker tracks, and their
    // model-layer phase spans were captured on layer track groups.
    assert!(json.contains(r#""name":"scenario #0""#));
    assert!(json.contains(r#""name":"scenario #1""#));
    assert!(json.contains("(cycles)"), "layer track group missing");
    assert!(json.contains(r#""cat":"bus""#), "no model-layer spans");

    // Connectivity: every single span — daemon, worker, and layer —
    // carries the same trace id in its args.
    let spans = json.matches(r#""ph":"X""#).count();
    let tagged = json.matches(r#""trace":"t1""#).count();
    assert!(spans >= 4 + 2 + 2, "suspiciously few spans: {spans}");
    assert_eq!(spans, tagged, "some spans are missing the trace id");

    // A second request gets its own trace id; the ring keeps both.
    let events = session(&d, &script.replace("\"r1\"", "\"r2\""));
    let done = events.iter().find(|e| event_name(e) == "done").unwrap();
    assert_eq!(field(done, "trace").as_str(), Some("t2"));
    assert_eq!(d.request_traces().len(), 2);
}

#[test]
fn tracing_off_by_default_leaves_no_residue() {
    let d = daemon(DaemonOptions {
        workers: 1,
        ..DaemonOptions::default()
    });
    let events = session(
        &d,
        r#"{"v":1,"id":"r1","op":"run","scenarios":[{"kind":"named","name":"single_read"}]}"#,
    );
    let done = events.iter().find(|e| event_name(e) == "done").unwrap();
    assert!(done.get("trace").is_none(), "untraced done carries no id");
    assert!(d.request_traces().is_empty());
    assert!(
        d.telemetry_jsonl().is_empty(),
        "logging off captures nothing"
    );
}

#[test]
fn a_stalled_request_degrades_health_and_warns() {
    let d = daemon(DaemonOptions {
        workers: 1,
        deadline_ms: 1,
        tick_ms: 1,
        log_level: Some(Level::Warn),
        ..DaemonOptions::default()
    });
    // A scenario big enough to hold the pool well past the 1 ms
    // deadline; the monitor must observe the stall while it executes.
    let script =
        r#"{"v":2,"id":"slow","op":"run","scenarios":[{"kind":"mix","seed":2,"count":20000}]}"#;
    let (ok_before, reasons) = d.health();
    assert!(ok_before, "fresh daemon is healthy: {reasons:?}");
    let mut saw_degraded = None;
    std::thread::scope(|scope| {
        let session = scope.spawn(|| session(&d, script));
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline && !session.is_finished() {
            let (ok, reasons) = d.health();
            if !ok {
                saw_degraded = Some(reasons);
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        session.join().expect("session thread");
    });
    let reasons = saw_degraded.expect("health never degraded during the stall");
    assert!(
        reasons.iter().any(|r| r == "stalled-request:slow"),
        "unexpected reasons: {reasons:?}"
    );
    // The stall left durable evidence: a warn event and a counter.
    let jsonl = d.telemetry_jsonl();
    let warn = jsonl
        .lines()
        .find(|l| l.contains(r#""event":"watchdog.stall""#))
        .expect("watchdog warn event");
    assert!(warn.contains(r#""level":"warn""#), "{warn}");
    assert!(warn.contains(r#""req":"slow""#), "{warn}");
    assert!(warn.contains(r#""schema_version":1"#), "{warn}");
    assert!(d
        .metrics_csv()
        .contains("counter,serve.watchdog.stall,count,1\n"));
    // The request completed, so health recovered.
    let (ok, reasons) = d.health();
    assert!(
        ok,
        "health must recover after the stall clears: {reasons:?}"
    );
}

#[test]
fn subscribe_health_and_extended_stats_speak_protocol_v2() {
    let d = daemon(DaemonOptions {
        workers: 1,
        ..DaemonOptions::default()
    });
    let script = [
        // Long period: the immediate ack snapshot is the only one,
        // keeping the event count deterministic.
        r#"{"v":2,"id":"sub","op":"subscribe","every_ms":60000}"#,
        r#"{"v":2,"id":"r1","op":"run","scenarios":[{"kind":"named","name":"burst_reads"}]}"#,
        r#"{"v":2,"id":"h","op":"health"}"#,
        r#"{"v":2,"id":"off","op":"subscribe","every_ms":0}"#,
        r#"{"v":2,"id":"s","op":"stats"}"#,
    ]
    .join("\n");
    let events = session(&d, &script);

    let snapshot = events
        .iter()
        .find(|e| event_name(e) == "snapshot")
        .expect("subscribe acks with an immediate snapshot");
    assert_eq!(field(snapshot, "req").as_str(), Some("sub"));
    assert_eq!(field(snapshot, "health").as_str(), Some("ok"));

    let health = events
        .iter()
        .find(|e| event_name(e) == "health")
        .expect("health event");
    assert_eq!(field(health, "req").as_str(), Some("h"));
    assert_eq!(field(health, "status").as_str(), Some("ok"));
    assert_eq!(field(health, "reasons").as_arr().map(|r| r.len()), Some(0));

    assert!(
        events.iter().any(|e| event_name(e) == "unsubscribed"),
        "every_ms:0 unsubscribes"
    );

    let stats = events
        .iter()
        .find(|e| event_name(e) == "stats")
        .expect("stats event");
    // Cache counters and occupancy ride in the stats reply.
    assert_eq!(field(stats, "cache_len").as_u64(), Some(1));
    assert_eq!(field(stats, "cache_hits").as_u64(), Some(0));
    assert_eq!(field(stats, "cache_misses").as_u64(), Some(1));
    assert_eq!(field(stats, "cache_evictions").as_u64(), Some(0));
    let occupancy = field(stats, "cache_occupancy").as_f64().unwrap();
    assert!(occupancy > 0.0 && occupancy <= 1.0, "{occupancy}");
    // Rolling-window SLO aggregates cover the one run.
    assert_eq!(field(stats, "win_requests").as_u64(), Some(1));
    assert_eq!(field(stats, "win_hit_ratio").as_f64(), Some(0.0));
    assert!(field(stats, "win_total_p50_us").as_u64().is_some());
    assert_eq!(field(stats, "single_scenarios").as_u64(), Some(1));
    assert_eq!(field(stats, "multi_scenarios").as_u64(), Some(0));
    assert_eq!(field(stats, "watchdog_stalls").as_u64(), Some(0));
    assert_eq!(field(stats, "health").as_str(), Some("ok"));
}

#[test]
fn dump_trace_writes_retained_traces_to_the_trace_dir() {
    let dir = std::env::temp_dir().join("hierbus_serve_trace_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let d = daemon(DaemonOptions {
        workers: 1,
        trace_requests: 8,
        trace_dir: Some(dir.clone()),
        ..DaemonOptions::default()
    });
    let script = [
        r#"{"v":2,"id":"r1","op":"run","scenarios":[{"kind":"named","name":"single_read"}]}"#,
        r#"{"v":2,"id":"d1","op":"dump-trace"}"#,
    ]
    .join("\n");
    let events = session(&d, &script);
    let traces = events
        .iter()
        .find(|e| event_name(e) == "traces")
        .expect("dump-trace reply");
    assert_eq!(field(traces, "count").as_u64(), Some(1));
    let files = field(traces, "files").as_arr().unwrap();
    assert_eq!(files.len(), 1);
    let path = std::path::PathBuf::from(files[0].as_str().unwrap());
    let contents = std::fs::read_to_string(&path).expect("dumped trace file");
    assert!(contents.contains(r#""trace":"t1""#));
    assert!(contents.contains(r#""name":"queued""#));
    let _ = std::fs::remove_dir_all(&dir);

    // Without a trace dir the op answers with an error, not a panic.
    let bare = daemon(DaemonOptions {
        trace_requests: 8,
        ..DaemonOptions::default()
    });
    let events = session(&bare, r#"{"v":2,"id":"d","op":"dump-trace"}"#);
    assert_eq!(event_name(&events[0]), "error");
    assert!(field(&events[0], "message")
        .as_str()
        .unwrap()
        .contains("trace directory"));
}

#[test]
fn event_log_captures_leveled_session_events() {
    let d = daemon(DaemonOptions {
        workers: 1,
        log_level: Some(Level::Debug),
        ..DaemonOptions::default()
    });
    let script = [
        r#"{"v":1,"id":"r1","op":"run","scenarios":[{"kind":"named","name":"single_read"}]}"#,
        "this is not json",
    ]
    .join("\n");
    session(&d, &script);
    let jsonl = d.telemetry_jsonl();
    // Every line is schema-versioned JSON with monotonically increasing
    // sequence numbers.
    let mut last_seq = 0;
    for line in jsonl.lines() {
        let event = Json::parse(line).expect("event log line is JSON");
        assert_eq!(field(&event, "schema_version").as_u64(), Some(1));
        let seq = field(&event, "seq").as_u64().unwrap();
        assert!(seq > last_seq || last_seq == 0, "seq not monotone");
        last_seq = seq;
    }
    for (needle, level) in [
        (r#""event":"session.start""#, "info"),
        (r#""event":"request.done""#, "debug"),
        (r#""event":"request.bad""#, "warn"),
        (r#""event":"session.end""#, "info"),
    ] {
        let line = jsonl
            .lines()
            .find(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("missing {needle}"));
        assert!(line.contains(&format!(r#""level":"{level}""#)), "{line}");
    }
    // At warn threshold the debug/info events are never captured.
    let quiet = daemon(DaemonOptions {
        workers: 1,
        log_level: Some(Level::Warn),
        ..DaemonOptions::default()
    });
    session(&quiet, &script);
    let jsonl = quiet.telemetry_jsonl();
    assert!(!jsonl.contains("request.done"));
    assert!(jsonl.contains("request.bad"));
}

#[test]
fn metrics_file_is_written_in_prometheus_text_format() {
    let dir = std::env::temp_dir().join("hierbus_serve_metrics_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.prom");
    let d = daemon(DaemonOptions {
        workers: 1,
        metrics_file: Some(path.clone()),
        ..DaemonOptions::default()
    });
    session(
        &d,
        r#"{"v":1,"id":"r1","op":"run","scenarios":[{"kind":"named","name":"single_read"}]}"#,
    );
    let text = std::fs::read_to_string(&path).expect("metrics file");
    assert_eq!(text, d.metrics_prometheus());
    assert!(text.contains("# TYPE serve_requests counter"));
    assert!(text.contains("serve_requests 1\n"));
    assert!(text.contains("# TYPE serve_request_latency_us histogram"));
    assert!(text.contains(r#"serve_request_latency_us_bucket{le="+Inf"} 1"#));
    let _ = std::fs::remove_dir_all(&dir);
}
