//! Result-cache behavior through the daemon: hit/miss accounting,
//! LRU eviction at capacity, and byte-identical replay of cached
//! results at every worker count — the serve-side analog of
//! `campaign_determinism.rs`.

use hierbus::serve::{Daemon, DaemonOptions, ScenarioSpec};
use hierbus_campaign::Json;
use hierbus_ec::MixParams;
use hierbus_power::CharacterizationDb;
use std::collections::BTreeMap;
use std::io::Cursor;
use std::sync::Arc;

fn daemon(workers: usize, cache_capacity: usize) -> Daemon {
    Daemon::new(
        Arc::new(CharacterizationDb::uniform()),
        DaemonOptions {
            workers,
            cache_capacity,
            ..DaemonOptions::default()
        },
    )
}

fn run_request(id: &str, specs: &[ScenarioSpec]) -> String {
    Json::Obj(vec![
        ("v".to_owned(), Json::Num(1.0)),
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("op".to_owned(), Json::Str("run".to_owned())),
        (
            "scenarios".to_owned(),
            Json::Arr(specs.iter().map(ScenarioSpec::to_json).collect()),
        ),
    ])
    .to_string_compact()
}

fn specs(n: u64) -> Vec<ScenarioSpec> {
    (0..n)
        .map(|seed| ScenarioSpec::Mix {
            seed,
            params: MixParams {
                count: 40,
                ..MixParams::default()
            },
            waits: None,
        })
        .collect()
}

/// Streams one session and maps every result event to
/// `(request id, scenario index) -> (cached flag, exact result bytes)`.
/// Result events arrive in completion order, so comparisons go through
/// this map, never through stream position.
fn run_session(daemon: &Daemon, script: &str) -> BTreeMap<(String, u64), (bool, String)> {
    let mut output = Vec::new();
    daemon
        .serve(Cursor::new(script.to_owned()), &mut output)
        .expect("in-memory session");
    let mut results = BTreeMap::new();
    for line in String::from_utf8(output).expect("utf-8").lines() {
        let event = Json::parse(line).expect("response line parses");
        if event.get("event").and_then(Json::as_str) != Some("result") {
            continue;
        }
        let req = event.get("req").unwrap().as_str().unwrap().to_owned();
        let index = event.get("index").unwrap().as_u64().unwrap();
        let cached = event.get("cached").unwrap().as_bool().unwrap();
        let bytes = event.get("result").unwrap().to_string_compact();
        let previous = results.insert((req, index), (cached, bytes));
        assert!(previous.is_none(), "duplicate result for one request index");
    }
    results
}

#[test]
fn cached_replay_is_byte_identical_at_1_2_4_workers() {
    let specs = specs(6);
    let script = [run_request("cold", &specs), run_request("warm", &specs)].join("\n");

    let mut all_cold: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let d = daemon(workers, 64);
        let results = run_session(&d, &script);
        assert_eq!(results.len(), 2 * specs.len());
        let mut cold = Vec::new();
        for i in 0..specs.len() as u64 {
            let (cold_cached, cold_bytes) = &results[&("cold".to_owned(), i)];
            let (warm_cached, warm_bytes) = &results[&("warm".to_owned(), i)];
            assert!(!cold_cached, "first submission must simulate");
            assert!(warm_cached, "resubmission must be served from cache");
            assert_eq!(
                warm_bytes, cold_bytes,
                "cached result differs from fresh run at index {i}, {workers} workers"
            );
            cold.push(cold_bytes.clone());
        }
        all_cold.push(cold);
    }
    // Fresh results are also identical across worker counts — the
    // campaign engine's determinism contract, observed over the wire.
    for other in &all_cold[1..] {
        assert_eq!(other, &all_cold[0], "results differ across worker counts");
    }
}

#[test]
fn hit_and_miss_accounting_through_the_daemon() {
    let d = daemon(2, 64);
    let s = specs(4);
    let script = [
        run_request("a", &s),      // 4 misses
        run_request("b", &s[..2]), // 2 hits
        run_request("c", &s),      // 4 hits
    ]
    .join("\n");
    let mut output = Vec::new();
    let summary = d
        .serve(Cursor::new(script), &mut output)
        .expect("in-memory session");
    assert_eq!(summary.cache_misses, 4);
    assert_eq!(summary.cache_hits, 6);
    assert_eq!(d.cache_len(), 4);
    // The counters are exported through the obs metrics registry.
    let csv = d.metrics_csv();
    assert!(csv.contains("serve.cache.hit,count,6"), "{csv}");
    assert!(csv.contains("serve.cache.miss,count,4"), "{csv}");
    assert!(csv.contains("serve.requests,count,3"), "{csv}");
}

#[test]
fn lru_eviction_at_capacity_recomputes_evicted_scenarios() {
    // Capacity 2, one worker (deterministic completion order). Filling
    // with scenarios 0,1,2 evicts 0; resubmitting 0 misses and in turn
    // evicts 1; scenario 2 — the most recently used — keeps hitting.
    let d = daemon(1, 2);
    let s = specs(3);
    let script = [
        run_request("fill", &s),
        run_request("evicted", &s[..1]),
        run_request("mixed", &s[1..]),
    ]
    .join("\n");
    let results = run_session(&d, &script);
    for i in 0..3 {
        assert!(!results[&("fill".to_owned(), i)].0, "cold fill at {i}");
    }
    assert!(
        !results[&("evicted".to_owned(), 0)].0,
        "evicted scenario must recompute"
    );
    assert!(
        !results[&("mixed".to_owned(), 0)].0,
        "scenario 1 was evicted by the recomputation of scenario 0"
    );
    assert!(
        results[&("mixed".to_owned(), 1)].0,
        "most recently used entry was wrongly evicted"
    );
    // Recomputation reproduces the original bytes exactly.
    assert_eq!(
        results[&("evicted".to_owned(), 0)].1,
        results[&("fill".to_owned(), 0)].1
    );
    assert_eq!(d.cache_len(), 2);
    let csv = d.metrics_csv();
    assert!(csv.contains("serve.cache.eviction,count,3"), "{csv}");
}

#[test]
fn within_request_duplicates_simulate_once() {
    let d = daemon(2, 64);
    let one = specs(1);
    let duplicated = vec![one[0].clone(), one[0].clone(), one[0].clone()];
    let script = run_request("dup", &duplicated);
    let results = run_session(&d, &script);
    assert_eq!(results.len(), 3, "every index gets its result event");
    let bytes: Vec<&String> = (0..3).map(|i| &results[&("dup".to_owned(), i)].1).collect();
    assert_eq!(bytes[0], bytes[1]);
    assert_eq!(bytes[1], bytes[2]);
    assert_eq!(d.cache_len(), 1, "one simulation serves all duplicates");
}

// ---------------------------------------------------------------------
// Cross-backend cache portability. The packed kernel backend is a
// process-wide choice (HIERBUS_PACKED_BACKEND, resolved once), so these
// tests re-exec the test binary: one child process fills a persisted
// cache under one backend, a second replays it under another. The
// result payloads must be byte-equal in every direction — the cache
// key and the cached bytes both live below the backend choice, because
// every backend is bit-exact.
// ---------------------------------------------------------------------

/// Child body, driven by `SERVE_CHILD_DIR` / `SERVE_CHILD_MODE`
/// (`fill` or `replay`); a plain no-op pass when run as part of the
/// normal suite.
#[test]
fn backend_forced_serve_child() {
    let Ok(dir) = std::env::var("SERVE_CHILD_DIR") else {
        return;
    };
    let mode = std::env::var("SERVE_CHILD_MODE").expect("child mode set");
    let dir = std::path::PathBuf::from(dir);
    let d = Daemon::new(
        Arc::new(CharacterizationDb::uniform()),
        DaemonOptions {
            workers: 2,
            cache_capacity: 64,
            cache_index: Some(dir.join("cache.json")),
            ..DaemonOptions::default()
        },
    );
    let specs = specs(5);
    let results = run_session(&d, &run_request("probe", &specs));
    assert_eq!(results.len(), specs.len());
    let mut rendering = String::new();
    for ((req, index), (cached, bytes)) in &results {
        match mode.as_str() {
            "fill" => assert!(!cached, "{req} {index}: fill run must simulate"),
            "replay" => assert!(
                cached,
                "{req} {index}: replay under a different backend missed the cache"
            ),
            other => panic!("unknown child mode {other:?}"),
        }
        rendering.push_str(&format!("{index} {bytes}\n"));
    }
    std::fs::write(dir.join(format!("{mode}.txt")), rendering).expect("child rendering written");
}

fn run_child(dir: &std::path::Path, mode: &str, backend: &str) {
    let status = std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", "backend_forced_serve_child", "--nocapture"])
        .env("SERVE_CHILD_DIR", dir)
        .env("SERVE_CHILD_MODE", mode)
        .env("HIERBUS_PACKED_BACKEND", backend)
        .status()
        .expect("child test process spawns");
    assert!(status.success(), "{mode} child ({backend}) failed");
}

#[test]
fn cache_filled_by_one_backend_replays_byte_identical_on_another() {
    let mut payloads: Vec<String> = Vec::new();
    for (fill_backend, replay_backend) in [("scalar", "auto"), ("auto", "scalar")] {
        let dir = std::env::temp_dir().join(format!(
            "hierbus_serve_xbackend_{fill_backend}_{replay_backend}"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        run_child(&dir, "fill", fill_backend);
        run_child(&dir, "replay", replay_backend);
        let fill = std::fs::read_to_string(dir.join("fill.txt")).expect("fill rendering");
        let replay = std::fs::read_to_string(dir.join("replay.txt")).expect("replay rendering");
        assert_eq!(
            fill, replay,
            "cache payloads differ: filled under {fill_backend}, replayed under {replay_backend}"
        );
        payloads.push(fill);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // And both directions produced the same bytes as each other: the
    // result payload is a pure function of the scenario, not of the
    // kernel that computed it.
    assert_eq!(payloads[0], payloads[1], "scalar-fill vs packed-fill bytes");
}
