//! Campaign-engine determinism across the real exploration stack: the
//! merged results and the manifest must be byte-identical for any
//! worker count, and a resumed campaign must skip completed scenarios
//! without changing the final output.

use hierbus_campaign::{
    CampaignOptions, CampaignPayload, ClaimStrategy, Json, Matrix, ScenarioPoint,
};
use hierbus_jcvm::workloads::standard_workloads;
use hierbus_jcvm::{
    explore_campaign, explore_matrix, run_config, ExplorationRow, ExploreSession, IfaceConfig,
};
use hierbus_power::CharacterizationDb;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const BASE: u64 = 0x8000;

fn test_configs() -> Vec<IfaceConfig> {
    vec![
        IfaceConfig::baseline(BASE),
        IfaceConfig {
            slow_window: true,
            ..IfaceConfig::baseline(BASE)
        },
        IfaceConfig::with_bursts(BASE),
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hierbus_campaign_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A byte-exact rendering of the merged rows (Debug includes every
/// field, including the f64 energy, at full precision).
fn render(rows: &[ExplorationRow]) -> String {
    rows.iter().map(|r| format!("{r:?}\n")).collect()
}

/// Manifest bytes with the wall-clock `last_run` diagnostics section
/// stripped — everything else must stay byte-identical across worker
/// counts and resume paths.
fn manifest_sans_run(path: &PathBuf) -> String {
    let mut doc = Json::parse(&std::fs::read_to_string(path).expect("manifest written"))
        .expect("manifest parses");
    doc.remove("last_run");
    doc.to_string_pretty()
}

#[test]
fn merged_results_and_manifest_identical_for_1_2_4_8_workers() {
    let db = Arc::new(CharacterizationDb::uniform());
    let configs = test_configs();
    let workloads = &standard_workloads()[..2];
    let dir = temp_dir("workers");

    let mut outputs: Vec<(String, String)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let manifest = dir.join(format!("w{workers}.manifest.json"));
        let opts = CampaignOptions {
            manifest_path: Some(manifest.clone()),
            ..CampaignOptions::with_workers("determinism", workers)
        };
        let (rows, stats) = explore_campaign(&configs, workloads, &db, &opts).unwrap();
        assert_eq!(stats.executed, configs.len() * workloads.len());
        assert_eq!(stats.workers, workers.min(stats.total));
        outputs.push((render(&rows), manifest_sans_run(&manifest)));
    }
    let (base_rows, base_manifest) = &outputs[0];
    for (rows, manifest) in &outputs[1..] {
        assert_eq!(rows, base_rows, "merged rows differ across worker counts");
        assert_eq!(
            manifest, base_manifest,
            "manifests differ across worker counts"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_campaign_resumes_without_recomputing() {
    let db = Arc::new(CharacterizationDb::uniform());
    let configs = test_configs();
    let all_workloads = standard_workloads();
    let workloads = &all_workloads[..2];
    let matrix = explore_matrix(&configs, workloads);
    let total = matrix.len();
    let dir = temp_dir("resume");
    let manifest = dir.join("explore.manifest.json");

    let executions = AtomicUsize::new(0);
    let runner = |point: &ScenarioPoint| {
        executions.fetch_add(1, Ordering::Relaxed);
        run_config(configs[point.coords[0]], &workloads[point.coords[1]], &db).unwrap()
    };

    // "Interrupted" run: stop after 3 of the scenarios.
    let interrupted = hierbus_campaign::run(
        &matrix,
        &CampaignOptions {
            manifest_path: Some(manifest.clone()),
            limit: Some(3),
            ..CampaignOptions::with_workers("resume", 2)
        },
        runner,
    )
    .unwrap();
    assert_eq!(interrupted.stats.executed, 3);
    assert!(!interrupted.is_complete());
    assert_eq!(executions.load(Ordering::Relaxed), 3);

    // Resume: only the remaining scenarios execute.
    let resumed = hierbus_campaign::run(
        &matrix,
        &CampaignOptions {
            manifest_path: Some(manifest.clone()),
            ..CampaignOptions::with_workers("resume", 2)
        },
        runner,
    )
    .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.stats.resumed, 3);
    assert_eq!(resumed.stats.executed, total - 3);
    assert_eq!(
        executions.load(Ordering::Relaxed),
        total,
        "no recomputation"
    );

    // The resumed output equals a fresh uninterrupted run, manifest
    // included.
    let fresh_manifest = dir.join("fresh.manifest.json");
    let (fresh_rows, _) = explore_campaign(
        &configs,
        workloads,
        &db,
        &CampaignOptions {
            manifest_path: Some(fresh_manifest.clone()),
            ..CampaignOptions::sequential("resume")
        },
    )
    .unwrap();
    let resumed_rows: Vec<ExplorationRow> =
        resumed.results.into_iter().map(Option::unwrap).collect();
    assert_eq!(render(&resumed_rows), render(&fresh_rows));
    assert_eq!(
        manifest_sans_run(&manifest),
        manifest_sans_run(&fresh_manifest)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn claim_strategies_produce_identical_output_at_every_worker_count() {
    // Chunked claiming with reset-reused sessions must be byte-identical
    // to the old per-scenario claiming with fresh sessions — the
    // determinism contract of the engine optimization.
    let db = Arc::new(CharacterizationDb::uniform());
    let configs = test_configs();
    let workloads = &standard_workloads()[..2];
    let matrix = explore_matrix(&configs, workloads);

    let run_at = |workers: usize, claim: ClaimStrategy| {
        let opts = CampaignOptions {
            claim,
            ..CampaignOptions::with_workers("claims", workers)
        };
        let report = hierbus_campaign::run_with(
            &matrix,
            &opts,
            || ExploreSession::new(&db),
            |session, point: &ScenarioPoint| {
                session
                    .run(configs[point.coords[0]], &workloads[point.coords[1]])
                    .unwrap()
            },
        )
        .unwrap();
        let rows: Vec<ExplorationRow> = report.results.into_iter().flatten().collect();
        render(&rows)
    };

    let baseline = run_at(1, ClaimStrategy::PerScenario);
    for workers in [1usize, 2, 4, 8] {
        for claim in [ClaimStrategy::Chunked, ClaimStrategy::PerScenario] {
            assert_eq!(
                run_at(workers, claim),
                baseline,
                "output differs at {workers} workers with {claim:?}"
            );
        }
    }
}

#[test]
fn interrupted_chunked_campaign_resumes_byte_identically() {
    // Interrupt under chunked claiming, resume under chunked claiming
    // with a different worker count: no recomputation of completed
    // scenarios, and the final manifest equals a fresh sequential run's.
    let db = Arc::new(CharacterizationDb::uniform());
    let configs = test_configs();
    let all_workloads = standard_workloads();
    let workloads = &all_workloads[..2];
    let matrix = explore_matrix(&configs, workloads);
    let total = matrix.len();
    let dir = temp_dir("chunked_resume");
    let manifest = dir.join("chunked.manifest.json");

    let executions = AtomicUsize::new(0);
    let run_chunked = |workers: usize, limit: Option<usize>| {
        hierbus_campaign::run_with(
            &matrix,
            &CampaignOptions {
                manifest_path: Some(manifest.clone()),
                limit,
                claim: ClaimStrategy::Chunked,
                ..CampaignOptions::with_workers("chunked_resume", workers)
            },
            || ExploreSession::new(&db),
            |session, point: &ScenarioPoint| {
                executions.fetch_add(1, Ordering::Relaxed);
                session
                    .run(configs[point.coords[0]], &workloads[point.coords[1]])
                    .unwrap()
            },
        )
        .unwrap()
    };

    let interrupted = run_chunked(4, Some(3));
    assert_eq!(interrupted.stats.executed, 3);
    assert!(!interrupted.is_complete());

    let resumed = run_chunked(2, None);
    assert!(resumed.is_complete());
    assert_eq!(resumed.stats.resumed, 3);
    assert_eq!(resumed.stats.executed, total - 3);
    assert_eq!(executions.load(Ordering::Relaxed), total, "no recompute");

    let fresh_manifest = dir.join("fresh.manifest.json");
    let (fresh_rows, _) = explore_campaign(
        &configs,
        workloads,
        &db,
        &CampaignOptions {
            manifest_path: Some(fresh_manifest.clone()),
            ..CampaignOptions::sequential("chunked_resume")
        },
    )
    .unwrap();
    let resumed_rows: Vec<ExplorationRow> =
        resumed.results.into_iter().map(Option::unwrap).collect();
    assert_eq!(render(&resumed_rows), render(&fresh_rows));
    assert_eq!(
        manifest_sans_run(&manifest),
        manifest_sans_run(&fresh_manifest)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exploration_rows_roundtrip_the_manifest_payload() {
    let db = CharacterizationDb::uniform();
    let row = run_config(IfaceConfig::baseline(BASE), &standard_workloads()[0], &db).unwrap();
    let back = ExplorationRow::from_json(&row.to_json()).expect("payload parses");
    assert_eq!(back, row);
}

#[test]
fn campaign_metrics_snapshots_merge_deterministically() {
    // Per-scenario MetricsRegistry snapshots reduced in scenario-index
    // order: the concatenated CSV must not depend on the worker count.
    use hierbus_obs::MetricsRegistry;

    struct Snap(String);
    impl CampaignPayload for Snap {
        fn to_json(&self) -> hierbus_campaign::Json {
            hierbus_campaign::Json::Str(self.0.clone())
        }
        fn from_json(json: &hierbus_campaign::Json) -> Option<Self> {
            json.as_str().map(|s| Snap(s.to_owned()))
        }
    }

    let matrix = Matrix::new().axis("scenario", (0..6).map(|i| i.to_string()));
    let run_at = |workers| {
        let report = hierbus_campaign::run(
            &matrix,
            &CampaignOptions::with_workers("metrics", workers),
            |point| {
                let mut reg = MetricsRegistry::new();
                let c = reg.counter("scenario.txns");
                reg.add(c, point.index as u64 * 7 + 1);
                Snap(reg.to_csv())
            },
        )
        .unwrap();
        report
            .completed()
            .map(|(p, s)| format!("## {}\n{}", p.key, s.0))
            .collect::<String>()
    };
    let sequential = run_at(1);
    assert_eq!(run_at(4), sequential);
}
