//! Differential fault-injection tests: the same [`FaultPlan`] replayed
//! at every abstraction level must produce the same per-transaction
//! outcomes and the same committed memory, a card tear must never leave
//! the layers disagreeing about what was written, and the fault-axis
//! campaign must be byte-identical for any worker count.
//!
//! [`FaultPlan`]: hierbus::ec::FaultPlan

use hierbus::ec::sequences::{MasterOp, Scenario};
use hierbus::ec::{BusError, FaultKind, FaultPlan, OpFault, RetryPolicy, TxnOutcome, WaitProfile};
use hierbus::harness::fault::{run_layer1, run_layer2, run_reference, FaultRun};
use hierbus::harness::shared_db;
use hierbus::power::CharacterizationDb;

/// Three single-beat writes — single-beat so the block-atomic layer-2
/// transfer commits at the same cycle as the beat-level models and the
/// tear sweep can demand *exact* memory agreement at every offset.
fn three_writes() -> Scenario {
    Scenario {
        name: "fault-three-writes",
        ops: vec![
            MasterOp::write(0x100, 0x1111_1111),
            MasterOp::write(0x104, 0x2222_2222).after_idle(1),
            MasterOp::write(0x108, 0x3333_3333).after_idle(2),
        ]
        .into(),
        waits: WaitProfile::new(1, 2, 2),
    }
}

fn all_layers(
    scenario: &Scenario,
    db: &CharacterizationDb,
    plan: &FaultPlan,
    policy: RetryPolicy,
) -> (FaultRun, FaultRun, FaultRun) {
    (
        run_reference(scenario, plan, policy),
        run_layer1(scenario, db, plan, policy),
        run_layer2(scenario, db, plan, policy),
    )
}

/// Asserts the layer-invariant fault contract for one plan: identical
/// final outcomes, identical fault counters, identical committed
/// memory, layer 1 cycle-exact against the reference.
fn assert_agreement(tag: &str, rtl: &FaultRun, l1: &FaultRun, l2: &FaultRun) {
    assert_eq!(rtl.outcomes, l1.outcomes, "{tag}: rtl vs l1 outcomes");
    assert_eq!(l1.outcomes, l2.outcomes, "{tag}: l1 vs l2 outcomes");
    assert_eq!(rtl.counters, l1.counters, "{tag}: rtl vs l1 counters");
    assert_eq!(l1.counters, l2.counters, "{tag}: l1 vs l2 counters");
    assert_eq!(rtl.memory, l1.memory, "{tag}: rtl vs l1 memory");
    assert_eq!(l1.memory, l2.memory, "{tag}: l1 vs l2 memory");
    assert_eq!(rtl.cycles, l1.cycles, "{tag}: layer 1 not cycle-exact");
    assert!(
        l2.cycles >= l1.cycles,
        "{tag}: layer 2 optimistic ({} < {})",
        l2.cycles,
        l1.cycles
    );
}

#[test]
fn tear_at_every_cycle_commits_identical_memory() {
    let db = shared_db();
    let scenario = three_writes();
    let full = run_reference(&scenario, &FaultPlan::new(), RetryPolicy::NONE);
    assert!(!full.torn);
    // Sweep the tear over every cycle offset, past the natural end.
    for t in 0..=full.cycles + 2 {
        let plan = FaultPlan::new().with_tear(t);
        let (rtl, l1, l2) = all_layers(&scenario, &db, &plan, RetryPolicy::NONE);
        assert_agreement(&format!("tear@{t}"), &rtl, &l1, &l2);
        if t < full.cycles {
            assert!(rtl.torn, "tear@{t}: reference not torn");
            assert!(l1.torn && l2.torn, "tear@{t}: tlm not torn");
        }
    }
    // Tear past completion changes nothing.
    let plan = FaultPlan::new().with_tear(full.cycles + 100);
    let late = run_reference(&scenario, &plan, RetryPolicy::NONE);
    assert!(!late.torn);
    assert_eq!(late.memory, full.memory);
    assert_eq!(late.outcomes, full.outcomes);
}

#[test]
fn reference_energy_is_monotone_in_tear_time() {
    let scenario = three_writes();
    let full = run_reference(&scenario, &FaultPlan::new(), RetryPolicy::NONE);
    let mut last = 0.0f64;
    for t in 0..=full.cycles + 1 {
        let plan = FaultPlan::new().with_tear(t);
        let run = run_reference(&scenario, &plan, RetryPolicy::NONE);
        assert!(
            run.energy_pj >= last,
            "tear@{t}: energy decreased ({} < {last})",
            run.energy_pj
        );
        last = run.energy_pj;
    }
    // The untorn run is the ceiling of the sweep.
    assert!(full.energy_pj >= last);
}

#[test]
fn transient_error_retries_to_success_at_every_layer() {
    let db = shared_db();
    let scenario = three_writes();
    let plan = FaultPlan::new().with_fault(1, OpFault::once(FaultKind::SlaveError));
    let (rtl, l1, l2) = all_layers(&scenario, &db, &plan, RetryPolicy::retries(3));
    assert_agreement("retry", &rtl, &l1, &l2);
    assert!(rtl.outcomes.iter().all(|o| o.is_ok()), "{:?}", rtl.outcomes);
    assert_eq!(rtl.counters.injected, 1);
    assert_eq!(rtl.counters.retried, 1);
    assert_eq!(rtl.counters.aborted, 0);
    // One extra attempt record for the reissue.
    assert_eq!(rtl.records.len(), scenario.ops.len() + 1);
    // The retried write still committed.
    assert!(rtl.memory.contains(&(0x104 / 4, 0x2222_2222)));
    // The faulted run costs cycles and energy over the clean one.
    let clean = run_reference(&scenario, &FaultPlan::new(), RetryPolicy::NONE);
    assert!(rtl.cycles > clean.cycles);
    assert!(rtl.energy_pj > clean.energy_pj);
}

#[test]
fn exhausted_retries_surface_the_error_at_every_layer() {
    let db = shared_db();
    let scenario = three_writes();
    let plan = FaultPlan::new().with_fault(1, OpFault::always(FaultKind::SlaveError));
    let (rtl, l1, l2) = all_layers(&scenario, &db, &plan, RetryPolicy::retries(2));
    assert_agreement("exhausted", &rtl, &l1, &l2);
    assert!(matches!(
        rtl.outcomes[1],
        TxnOutcome::Error(BusError::SlaveError(_))
    ));
    assert!(rtl.outcomes[0].is_ok() && rtl.outcomes[2].is_ok());
    assert_eq!(rtl.counters.injected, 3, "initial attempt + 2 retries");
    assert_eq!(rtl.counters.retried, 2);
    // The erroring write never committed; its neighbours did.
    assert!(!rtl.memory.iter().any(|&(w, _)| w == 0x104 / 4));
    assert!(rtl.memory.contains(&(0x100 / 4, 0x1111_1111)));
    assert!(rtl.memory.contains(&(0x108 / 4, 0x3333_3333)));
}

#[test]
fn timeout_aborts_but_the_bus_drains_to_idle() {
    let db = shared_db();
    // A 40-cycle stall on op 0 against a 10-cycle timeout: the master
    // abandons the attempt, the bus drains it naturally, and later ops
    // (idle-gapped past the drain — an op *queued* behind the stall
    // would time out too, since its clock starts at issue) complete
    // normally: the FSM is back in a defined idle state.
    let scenario = Scenario {
        name: "fault-timeout",
        ops: vec![
            MasterOp::write(0x100, 0x1111_1111),
            MasterOp::write(0x104, 0x2222_2222).after_idle(60),
            MasterOp::write(0x108, 0x3333_3333).after_idle(2),
        ]
        .into(),
        waits: WaitProfile::new(1, 2, 2),
    };
    let plan = FaultPlan::new().with_fault(0, OpFault::always(FaultKind::Stall(40)));
    let policy = RetryPolicy {
        timeout: Some(10),
        ..RetryPolicy::NONE
    };
    let (rtl, l1, l2) = all_layers(&scenario, &db, &plan, policy);
    assert_agreement("timeout", &rtl, &l1, &l2);
    assert_eq!(rtl.outcomes[0], TxnOutcome::Aborted);
    assert!(rtl.outcomes[1].is_ok() && rtl.outcomes[2].is_ok());
    assert_eq!(rtl.counters.aborted, 1);
    // The abandoned write's data still landed when the stalled beat
    // finally completed (the master ignores it, the slave saw it) —
    // what matters is that all layers agree on that memory state,
    // which assert_agreement checked above.
    assert!(!rtl.torn);
}

#[test]
fn stall_fault_stretches_all_layers_identically() {
    let db = shared_db();
    let scenario = three_writes();
    let clean = run_reference(&scenario, &FaultPlan::new(), RetryPolicy::NONE);
    let plan = FaultPlan::new().with_fault(2, OpFault::always(FaultKind::Stall(5)));
    let (rtl, l1, l2) = all_layers(&scenario, &db, &plan, RetryPolicy::NONE);
    assert_agreement("stall", &rtl, &l1, &l2);
    assert!(rtl.outcomes.iter().all(|o| o.is_ok()));
    assert_eq!(rtl.cycles, clean.cycles + 5, "stall adds exactly 5 cycles");
    assert_eq!(rtl.counters.injected, 1);
}

#[test]
fn fault_campaign_byte_identical_across_worker_counts() {
    use hierbus_campaign::{CampaignOptions, CampaignPayload, Json, Matrix};

    struct Cell(String);
    impl CampaignPayload for Cell {
        fn to_json(&self) -> Json {
            Json::Str(self.0.clone())
        }
        fn from_json(json: &Json) -> Option<Self> {
            json.as_str().map(|s| Cell(s.to_owned()))
        }
    }

    let db = shared_db();
    let scenario = three_writes();
    let presets: [(&str, FaultPlan, RetryPolicy); 5] = [
        ("none", FaultPlan::new(), RetryPolicy::NONE),
        (
            "error-once",
            FaultPlan::new().with_fault(1, OpFault::once(FaultKind::SlaveError)),
            RetryPolicy::retries(3),
        ),
        (
            "error-always",
            FaultPlan::new().with_fault(1, OpFault::always(FaultKind::SlaveError)),
            RetryPolicy::retries(2),
        ),
        (
            "stall",
            FaultPlan::new().with_fault(0, OpFault::always(FaultKind::Stall(6))),
            RetryPolicy::NONE,
        ),
        ("tear", FaultPlan::new().with_tear(9), RetryPolicy::NONE),
    ];
    let matrix = Matrix::new()
        .axis(
            "layer",
            ["rtl", "tlm1", "tlm2"].iter().map(|s| s.to_string()),
        )
        .axis("fault", presets.iter().map(|(n, _, _)| n.to_string()));

    let run_at = |workers: usize| {
        hierbus_campaign::run(
            &matrix,
            &CampaignOptions::with_workers("fault-axis", workers),
            |point| {
                let (_, plan, policy) = &presets[point.coords[1]];
                let run = match point.coords[0] {
                    0 => run_reference(&scenario, plan, *policy),
                    1 => run_layer1(&scenario, &db, plan, *policy),
                    _ => run_layer2(&scenario, &db, plan, *policy),
                };
                Cell(format!(
                    "outcomes={:?} counters={:?} cycles={} energy={:?} mem={:?}",
                    run.outcomes, run.counters, run.cycles, run.energy_pj, run.memory
                ))
            },
        )
        .unwrap()
        .completed()
        .map(|(p, c)| format!("## {}\n{}\n", p.key, c.0))
        .collect::<String>()
    };

    let sequential = run_at(1);
    assert_eq!(run_at(2), sequential, "2 workers diverge from sequential");
    assert_eq!(run_at(4), sequential, "4 workers diverge from sequential");
    assert!(sequential.contains("outcomes=[Ok, Ok, Ok]"));
}
