//! Cross-layer energy attribution: every layer's ledger must be a
//! *decomposition* of that layer's reported energy (never a re-pricing),
//! the divergence auditor must localize a seeded discrepancy to the
//! right phase bucket, and a golden file pins the folded-stack exporter
//! byte-exactly.
//!
//! Regenerate the golden after an intentional format change with
//! `BLESS=1 cargo test --test attribution_cross_layer`.

use hierbus::ec::sequences::SCENARIO_BASE;
use hierbus::ec::{
    BurstLen, FaultKind, FaultPlan, MasterOp, OpFault, RetryPolicy, Scenario, WaitProfile,
};
use hierbus::harness;
use hierbus::obs::{DivergenceAuditor, LedgerPhase, Phase};
use hierbus::observe;

/// Relative decomposition tolerance: the ledger re-groups the same f64
/// additions the model performs, so only summation-order error remains.
const REL: f64 = 1e-9;

#[test]
fn ledger_totals_match_model_totals_on_evaluation_set() {
    let db = harness::standard_db();
    for scenario in &harness::evaluation_scenarios() {
        let run = observe::run_observed(scenario, &db);
        for (ledger, &model_total) in run.ledgers.iter().zip(&run.energy_pj) {
            let total = ledger.total_pj();
            assert!(
                (total - model_total).abs() <= REL * model_total.abs().max(1.0),
                "{}: {} ledger sums to {total} but the model reports {model_total}",
                scenario.name,
                ledger.layer()
            );
            assert!(ledger.cycles() > 0, "{}: empty ledger", scenario.name);
        }
    }
}

fn faulted_write_scenario() -> Scenario {
    Scenario {
        name: "attr_fault",
        ops: vec![
            MasterOp::read(SCENARIO_BASE),
            MasterOp::write(SCENARIO_BASE + 4, 0xDEAD_BEEF),
            MasterOp::burst_read(SCENARIO_BASE, BurstLen::B4),
        ]
        .into(),
        waits: WaitProfile::ZERO,
    }
}

/// A once-errored, once-retried write re-runs its address + write-data
/// phases: against the clean baseline the auditor must (a) call the
/// write-data bucket the worst divergence and (b) localize the first
/// divergent cycle inside the faulted write's span activity.
#[test]
fn auditor_localizes_a_seeded_fault_to_the_write_phase() {
    let db = harness::standard_db();
    let scenario = faulted_write_scenario();
    let clean =
        harness::fault::run_layer1_attributed(&scenario, &db, &FaultPlan::new(), RetryPolicy::NONE);
    let plan = FaultPlan::new().with_fault(1, OpFault::once(FaultKind::SlaveError));
    let faulted =
        harness::fault::run_layer1_attributed(&scenario, &db, &plan, RetryPolicy::retries(3));
    assert!(
        faulted.run.energy_pj > clean.run.energy_pj,
        "the retry must cost energy"
    );

    let auditor = DivergenceAuditor::new(1e-6, 1e-9);
    let audit = auditor.audit_ledgers(&clean.ledger, &faulted.ledger);
    assert!(!audit.is_clean(), "the seeded fault must diverge");
    let worst = audit.worst.expect("divergent buckets have a worst");
    assert_eq!(
        worst.key.phase,
        LedgerPhase::WriteData,
        "worst bucket should be the retried write's data phase, got {}",
        worst.key.folded_key()
    );
    assert!(worst.b_pj > worst.a_pj, "the faulted run books more");

    // Per-cycle localization: the first divergent cycle must fall inside
    // the faulted write's span activity (its context window contains a
    // write span of the faulted trace).
    let div = auditor
        .audit_traces(&clean.trace, &faulted.trace, &faulted.spans, 4)
        .expect("traces diverge");
    assert!(
        div.context
            .iter()
            .any(|s| s.phase == Phase::WriteData || s.phase == Phase::Address),
        "context window at cycle {} has no write activity: {:?}",
        div.cycle,
        div.context
    );
}

#[test]
fn folded_stack_export_matches_golden_file() {
    let db = harness::standard_db();
    let run = observe::run_observed(&hierbus::ec::sequences::write_after_read(), &db);
    let folded: String = run.ledgers.iter().map(|l| l.folded()).collect();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/write_after_read.folded"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &folded).expect("bless golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        folded, golden,
        "folded-stack export drifted from the golden file; if the change \
         is intentional, regenerate with \
         BLESS=1 cargo test --test attribution_cross_layer"
    );
}
