//! The instruction cache's effect on bus traffic, cycles and energy —
//! the cache/bus interaction axis the paper's related work explores.

use hierbus::core::Tlm1Bus;
use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
use hierbus::soc::{CpuSystem, Platform, PlatformMap, Program, Reg};

/// A 200-iteration ALU loop: tiny working set, maximal fetch locality.
fn loop_program() -> Vec<u32> {
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, 200);
    p.li(Reg::T1, 0);
    p.label("loop");
    p.addu(Reg::T1, Reg::T1, Reg::T0);
    p.addiu(Reg::T0, Reg::T0, -1);
    p.bne(Reg::T0, Reg::ZERO, "loop");
    p.halt();
    p.assemble().unwrap()
}

fn run(cache_lines: Option<usize>) -> (hierbus::soc::CpuReport, u32, f64, u64) {
    let mut platform = Platform::new();
    platform.load_boot_program(&loop_program());
    let mut bus = platform.into_tlm1();
    bus.enable_frames();
    let mut sys = match cache_lines {
        Some(n) => CpuSystem::with_icache(bus, PlatformMap::RESET_PC, n),
        None => CpuSystem::new(bus, PlatformMap::RESET_PC),
    };
    let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
    let mut bus_cycles_active = 0u64;
    let report = sys.run_until_halt(1_000_000, |bus: &mut Tlm1Bus| {
        model.on_frame(bus.last_frame());
        if bus.last_frame().a_valid || bus.last_frame().r_valid || bus.last_frame().w_valid {
            bus_cycles_active += 1;
        }
    });
    assert!(report.fault.is_none());
    let result = sys.core().reg(Reg::T1);
    (report, result, model.total_energy(), bus_cycles_active)
}

#[test]
fn cache_preserves_results_and_cuts_cycles_and_energy() {
    let (uncached, r_unc, e_unc, active_unc) = run(None);
    let (cached, r_c, e_c, active_c) = run(Some(16));

    // Architecture is untouched by the cache.
    assert_eq!(r_unc, 200 * 201 / 2);
    assert_eq!(r_c, r_unc);
    assert_eq!(cached.instructions, uncached.instructions);

    // The loop fits in the cache: cycles, bus activity and bus energy
    // all drop.
    assert!(
        (cached.cycles as f64) < 0.65 * uncached.cycles as f64,
        "cached {} vs uncached {}",
        cached.cycles,
        uncached.cycles
    );
    assert!(e_c < 0.65 * e_unc, "energy {e_c} vs {e_unc}");
    assert!(active_c < active_unc / 2);

    // CPI approaches 1 with hits, ~3 without (2-cycle ROM fetches).
    assert!(cached.cpi() < 1.4, "cached CPI {}", cached.cpi());
    assert!(uncached.cpi() > 2.0, "uncached CPI {}", uncached.cpi());
}

#[test]
fn cache_hit_rate_is_high_on_a_tight_loop() {
    let mut platform = Platform::new();
    platform.load_boot_program(&loop_program());
    let mut sys = CpuSystem::with_icache(platform.into_tlm1(), PlatformMap::RESET_PC, 16);
    sys.run_until_halt(1_000_000, |_| {});
    let cache = sys.core().icache().expect("cache configured");
    assert!(cache.hit_rate() > 0.98, "hit rate {}", cache.hit_rate());
    assert!(cache.misses() < 8);
}

#[test]
fn thrashing_code_still_works_with_a_tiny_cache() {
    // A one-line cache on a loop spanning several lines: constant
    // conflict misses, but identical results.
    let (small, r_small, _, _) = run(Some(1));
    let (big, r_big, _, _) = run(Some(64));
    assert_eq!(r_small, r_big);
    assert!(small.cycles >= big.cycles);
}
