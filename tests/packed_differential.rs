//! The packed differential harness: every [`PackedBits`] backend
//! compiled into this binary is pinned **bit-for-bit** — `f64::to_bits`
//! on energies, structural equality on everything else — against two
//! independent anchors:
//!
//! * the wire-by-wire [`SignalFrame::diff_reference`] walk (the paper's
//!   literal per-wire Hamming distance), and
//! * the scalar per-frame engine ([`Layer1EnergyModel::on_frame`]) and
//!   its pre-optimization bit-loop twin
//!   ([`Layer1EnergyModel::on_frame_reference`]).
//!
//! The sweep covers seeded-random traces, fault and tear replays,
//! lane-tail remainders (stimulus lengths that are not multiples of the
//! block or of any backend's lane count), and campaign merges at every
//! worker count. Any platform where a SIMD kernel miscounts a single
//! bit fails loudly here, with the seed printed in the assert message.
//!
//! [`PackedBits`]: hierbus::power::PackedBits
//! [`SignalFrame::diff_reference`]: hierbus::ec::SignalFrame::diff_reference
//! [`Layer1EnergyModel::on_frame`]: hierbus::power::Layer1EnergyModel::on_frame
//! [`Layer1EnergyModel::on_frame_reference`]: hierbus::power::Layer1EnergyModel::on_frame_reference

use hierbus::campaign::{CampaignOptions, CampaignPayload, ClaimStrategy, Json, Matrix};
use hierbus::core::{MemSlave, Tlm1Bus, TlmSystem};
use hierbus::ec::sequences::{random_mix, MasterOp, MixParams, Scenario};
use hierbus::ec::{
    AccessKind, BurstLen, DataWidth, FaultKind, FaultPlan, OpFault, RetryPolicy, SignalFrame,
    TogglesByClass, WaitProfile,
};
use hierbus::harness::{self, shared_db};
use hierbus::power::{Backend, BatchedLayer1, CharacterizationDb, Layer1EnergyModel, BLOCK};

/// SplitMix64 — the repo's standard dependency-free deterministic rng.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded-random stream of settled bus frames mixing address, read,
/// write and idle cycles — denser toggle activity than any real bus
/// schedule, so every class column and every lane position is stressed.
fn random_frames(seed: u64, n: usize) -> Vec<SignalFrame> {
    let mut s = seed;
    let mut frames = Vec::with_capacity(n);
    let mut f = SignalFrame::default();
    for _ in 0..n {
        f = f.to_idle();
        match splitmix(&mut s) % 5 {
            0 => f.drive_address(
                splitmix(&mut s),
                AccessKind::DataRead,
                DataWidth::W32,
                BurstLen::B4,
                true,
                false,
            ),
            1 => f.drive_address(
                splitmix(&mut s),
                AccessKind::InstrFetch,
                DataWidth::W16,
                BurstLen::Single,
                splitmix(&mut s).is_multiple_of(2),
                false,
            ),
            2 => f.drive_read(
                splitmix(&mut s) as u32,
                (splitmix(&mut s) % 8) as u8,
                true,
                false,
            ),
            3 => f.drive_write(
                splitmix(&mut s) as u32,
                0xF,
                (splitmix(&mut s) % 8) as u8,
                true,
                false,
            ),
            _ => {}
        }
        frames.push(f);
    }
    frames
}

/// Every backend the binary carries that the current CPU can run.
fn available_backends() -> Vec<Backend> {
    Backend::COMPILED
        .iter()
        .copied()
        .filter(|b| b.available())
        .collect()
}

// ---------------------------------------------------------------------
// Kernel level: packed counts vs the wire-by-wire reference walk.
// ---------------------------------------------------------------------

/// Each backend's `xor_popcount` over the packed class words must equal
/// [`SignalFrame::diff_reference`]'s per-wire walk on the same frame
/// pair — exactly, for every seed and every frame position.
#[test]
fn kernel_counts_equal_wire_by_wire_reference() {
    for seed in [0x1u64, 0xDEAD_BEEF, 0xA5A5_5A5A] {
        let frames = random_frames(seed, 257);
        for backend in available_backends() {
            let mut prev = SignalFrame::default();
            for (i, f) in frames.iter().enumerate() {
                let mut counts = [0u32; 6];
                backend.xor_popcount(f.packed().words(), prev.packed().words(), &mut counts);
                assert_eq!(
                    TogglesByClass::from_array(counts),
                    f.diff_reference(&prev),
                    "backend {} frame {i} seed {seed:#x}",
                    backend.name()
                );
                prev = *f;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine level: batched replay vs scalar vs bit-loop, per backend.
// ---------------------------------------------------------------------

/// Drives `frames` through a fresh scalar engine, a fresh bit-loop
/// reference engine, and a fresh batched engine per backend; asserts
/// the accumulated energy (`to_bits`), the per-class transition
/// totals and the per-cycle trace are identical everywhere.
fn assert_engines_agree(tag: &str, frames: &[SignalFrame]) {
    let mut scalar = Layer1EnergyModel::new(CharacterizationDb::uniform());
    scalar.enable_trace();
    let mut reference = Layer1EnergyModel::new(CharacterizationDb::uniform());
    reference.enable_trace();
    for f in frames {
        scalar.on_frame(f);
        reference.on_frame_reference(f);
    }
    assert_eq!(
        scalar.total_energy().to_bits(),
        reference.total_energy().to_bits(),
        "{tag}: scalar vs bit-loop reference"
    );
    assert_eq!(scalar.toggles(), reference.toggles(), "{tag}: toggles");
    assert_eq!(scalar.trace(), reference.trace(), "{tag}: traces");

    for backend in available_backends() {
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        model.enable_trace();
        let mut batched = BatchedLayer1::with_backend(model, backend);
        for f in frames {
            batched.on_frame(f);
        }
        let m = batched.model();
        assert_eq!(
            m.total_energy().to_bits(),
            scalar.total_energy().to_bits(),
            "{tag}: backend {} energy",
            backend.name()
        );
        assert_eq!(
            m.toggles(),
            scalar.toggles(),
            "{tag}: backend {} toggles",
            backend.name()
        );
        assert_eq!(
            m.trace(),
            scalar.trace(),
            "{tag}: backend {} trace",
            backend.name()
        );
    }
}

/// Seeded-random traces at bulk lengths.
#[test]
fn random_traces_bit_exact_on_every_backend() {
    for seed in [0x5EEDu64, 0xBE9C, 0xF00D_CAFE] {
        assert_engines_agree(
            &format!("seed {seed:#x}"),
            &random_frames(seed, 4 * BLOCK + 17),
        );
    }
}

/// Degenerate batches: the empty trace, a single frame, and every
/// length from 1 up past two blocks — which includes, for every
/// compiled backend, lengths coprime to its lane count, one below and
/// one above each block boundary, and the exact block multiple. The
/// remainder (lane-tail) path cannot hide here.
#[test]
fn lane_tails_and_degenerate_lengths_bit_exact() {
    assert_engines_agree("empty", &[]);
    for n in 1..=9 {
        assert_engines_agree(&format!("len {n}"), &random_frames(0x7A11 ^ n as u64, n));
    }
    for n in [
        BLOCK - 1,
        BLOCK,
        BLOCK + 1,
        BLOCK + 7,
        2 * BLOCK - 3,
        2 * BLOCK,
        2 * BLOCK + 5,
    ] {
        assert_engines_agree(&format!("len {n}"), &random_frames(0x7A11 ^ n as u64, n));
    }
}

// ---------------------------------------------------------------------
// Harness level: full bus runs, clean and faulted.
// ---------------------------------------------------------------------

fn probe_scenario(seed: u64, count: usize) -> Scenario {
    random_mix(
        seed,
        MixParams {
            count,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 2,
            ..MixParams::default()
        },
    )
}

/// `run_layer1` (the packed engine on the active backend) against
/// `run_layer1_reference` (a fresh model, the bit-loop diff and
/// per-toggle lookups): cycles, records, energy bits and trace bits.
#[test]
fn full_runs_match_reference_runs() {
    let db = shared_db();
    for seed in [0x11u64, 0x2222, 0xBE9C] {
        let scenario = probe_scenario(seed, 400);
        let packed = harness::run_layer1(&scenario, &db);
        let reference = harness::run_layer1_reference(&scenario, &db);
        assert_eq!(packed.cycles, reference.cycles, "seed {seed:#x}");
        assert_eq!(packed.records, reference.records, "seed {seed:#x}");
        assert_eq!(
            packed.energy_pj.to_bits(),
            reference.energy_pj.to_bits(),
            "seed {seed:#x}: energy"
        );
        assert_eq!(packed.trace, reference.trace, "seed {seed:#x}: trace");
    }
}

/// A faulted layer-1 replay with an explicit backend — the same wiring
/// as `harness::fault::run_layer1`, parameterized over the kernel.
fn faulted_run_with_backend(
    scenario: &Scenario,
    db: &CharacterizationDb,
    plan: &FaultPlan,
    policy: RetryPolicy,
    backend: Option<Backend>,
) -> (u64, u64, Vec<(u64, u32)>, f64, bool) {
    let mem = MemSlave::new(harness::scenario_slave(scenario));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone()).with_faults(plan.clone(), policy);
    let mut model = Layer1EnergyModel::new(db.clone());
    let (energy, cycles) = match backend {
        Some(b) => {
            let mut batched = BatchedLayer1::with_backend(model, b);
            let report = sys.run(harness::MAX_CYCLES, |bus: &mut Tlm1Bus| {
                batched.on_frame(bus.last_frame());
            });
            (batched.finish().total_energy(), report.cycles)
        }
        None => {
            let report = sys.run(harness::MAX_CYCLES, |bus: &mut Tlm1Bus| {
                model.on_frame_reference(bus.last_frame());
            });
            (model.total_energy(), report.cycles)
        }
    };
    use hierbus::core::HasSlaves;
    let memory = sys
        .bus()
        .slave_as::<MemSlave>(hierbus::ec::SlaveId(0))
        .expect("scenario slave is a MemSlave")
        .snapshot();
    (sys.completed(), cycles, memory, energy, sys.torn())
}

/// Fault and tear replays: for every backend, a plan mixing transient
/// slave errors, stalls, retries and a mid-run card tear must charge
/// *exactly* the same energy as the bit-loop reference — torn frames
/// included — and commit the same memory.
#[test]
fn fault_and_tear_replays_bit_exact_on_every_backend() {
    let db = shared_db();
    let scenario = Scenario {
        name: "packed-fault-probe",
        ops: vec![
            MasterOp::write(0x100, 0xAAAA_5555),
            MasterOp::read(0x100).after_idle(1),
            MasterOp::write(0x104, 0x0F0F_F0F0),
            MasterOp::write(0x108, 0x1234_5678).after_idle(2),
            MasterOp::read(0x104),
            MasterOp::write(0x10C, 0xFFFF_0000),
        ]
        .into(),
        waits: WaitProfile::new(1, 2, 2),
    };
    let clean = harness::fault::run_layer1(&scenario, &db, &FaultPlan::new(), RetryPolicy::NONE);
    let mut plans = vec![FaultPlan::new()
        .with_fault(1, OpFault::once(FaultKind::SlaveError))
        .with_fault(3, OpFault::always(FaultKind::Stall(2)))];
    // Tear sweep over the whole clean run, past the natural end.
    for t in 0..=clean.cycles + 1 {
        plans.push(FaultPlan::new().with_tear(t));
    }
    for (pi, plan) in plans.iter().enumerate() {
        let policy = RetryPolicy::retries(2);
        let reference = faulted_run_with_backend(&scenario, &db, plan, policy, None);
        for backend in available_backends() {
            let packed = faulted_run_with_backend(&scenario, &db, plan, policy, Some(backend));
            assert_eq!(
                packed.3.to_bits(),
                reference.3.to_bits(),
                "plan {pi} backend {}: energy",
                backend.name()
            );
            assert_eq!(
                (packed.0, packed.1, &packed.2, packed.4),
                (reference.0, reference.1, &reference.2, reference.4),
                "plan {pi} backend {}: completion/cycles/memory/torn",
                backend.name()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Multi-master level: arbiter-merged frame streams.
// ---------------------------------------------------------------------

/// The arbiter-merged CPU+DMA frame stream is shaped unlike any
/// single-master schedule — back-to-back issues from alternating
/// masters, DMA bursts splicing into CPU traffic — and the packed
/// engine must treat it as just another stream: bit-exact against the
/// scalar and bit-loop engines on every backend, for both policies.
#[test]
fn multi_master_merged_streams_bit_exact_on_every_backend() {
    use hierbus::core::MultiMasterSystem;
    use hierbus::ec::{ArbitrationPolicy, DmaParams, DmaProgram, MultiScenario};
    for policy in ArbitrationPolicy::ALL {
        for seed in [0x3A5Au64, 0xC0DE] {
            let cpu = probe_scenario(seed, 64);
            let dma = DmaProgram::seeded(
                seed ^ 0xD31A,
                DmaParams {
                    descriptors: 12,
                    ..DmaParams::default()
                },
            );
            let ms = MultiScenario::new("packed-multi", cpu, &dma, policy);
            let mem = MemSlave::new(harness::scenario_slave(&ms.cpu));
            let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
            bus.enable_frames();
            let mut sys = MultiMasterSystem::for_multi(bus, &ms);
            let mut frames: Vec<SignalFrame> = Vec::new();
            sys.run(harness::MAX_CYCLES, |bus: &mut Tlm1Bus| {
                frames.push(*bus.last_frame());
            });
            assert!(frames.len() > 64, "merged stream too short to stress lanes");
            assert_engines_agree(&format!("{}/seed {seed:#x}", policy.name()), &frames);
        }
    }
}

// ---------------------------------------------------------------------
// Campaign level: merged results at every worker count.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
struct Cell {
    cycles: u64,
    energy_pj: f64,
}

impl CampaignPayload for Cell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".to_owned(), Json::Num(self.cycles as f64)),
            ("energy_pj".to_owned(), Json::Num(self.energy_pj)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(Cell {
            cycles: json.get("cycles")?.as_u64()?,
            energy_pj: json.get("energy_pj")?.as_f64()?,
        })
    }
}

/// Bit-precise rendering: energies as raw u64 bit patterns, so a
/// sub-ulp divergence cannot hide behind decimal formatting.
fn render(cells: &[Cell]) -> String {
    cells
        .iter()
        .map(|c| format!("{} {:#018x}\n", c.cycles, c.energy_pj.to_bits()))
        .collect()
}

/// Campaign merges through reset-reused packed lean sessions must be
/// byte-identical at 1, 2 and 4 workers, under both claim strategies —
/// and every cell must equal a fresh `run_layer1` *and* a fresh
/// `run_layer1_reference` on that scenario, bit for bit. This is the
/// end-to-end determinism statement: the packed engine introduces no
/// worker-count-, reuse- or scheduling-dependent behavior.
#[test]
fn campaign_merges_identical_at_every_worker_count() {
    let db = shared_db();
    let seeds: Vec<u64> = (0..6).map(|i| 0x9C00 + i as u64).collect();
    let scenarios: Vec<Scenario> = seeds.iter().map(|&s| probe_scenario(s, 120)).collect();
    let matrix = Matrix::new().axis("seed", seeds.iter().map(|s| format!("{s:#x}")));

    let mut outputs = Vec::new();
    for workers in [1usize, 2, 4] {
        for strategy in [ClaimStrategy::Chunked, ClaimStrategy::PerScenario] {
            let opts = CampaignOptions {
                claim: strategy,
                ..CampaignOptions::with_workers("packed-differential", workers)
            };
            let report = hierbus::campaign::run_with(
                &matrix,
                &opts,
                || harness::Layer1LeanSession::new(&db),
                |session, point| {
                    let run = session.run(&scenarios[point.coords[0]]);
                    Cell {
                        cycles: run.cycles,
                        energy_pj: run.energy_pj,
                    }
                },
            )
            .unwrap();
            let cells: Vec<Cell> = report.results.into_iter().flatten().collect();
            assert_eq!(cells.len(), scenarios.len(), "w{workers} {strategy:?}");
            outputs.push((workers, strategy, render(&cells)));
        }
    }
    let base = &outputs[0].2;
    for (workers, strategy, rendered) in &outputs[1..] {
        assert_eq!(
            rendered, base,
            "merged cells differ at {workers} workers ({strategy:?})"
        );
    }

    // Anchor the merged cells to fresh full runs and the bit-loop path.
    let anchored: Vec<Cell> = scenarios
        .iter()
        .map(|s| {
            let full = harness::run_layer1(s, &db);
            let reference = harness::run_layer1_reference(s, &db);
            assert_eq!(full.energy_pj.to_bits(), reference.energy_pj.to_bits());
            assert_eq!(full.cycles, reference.cycles);
            Cell {
                cycles: full.cycles,
                energy_pj: full.energy_pj,
            }
        })
        .collect();
    assert_eq!(&render(&anchored), base, "campaign cells vs fresh runs");
}
