//! The interrupt system (Fig. 1): peripherals raise level-sensitive
//! lines, the bus aggregates them into a mask, and software observes and
//! acknowledges them over the bus.

use hierbus::core::{SlaveReply, Tlm1Bus};
use hierbus::ec::Address;
use hierbus::soc::{timer, CpuSystem, Platform, PlatformMap, Program, Reg};

#[test]
fn timer_expiry_raises_and_ack_clears_the_line() {
    // Start a 20-cycle one-shot timer, spin until its expiry flag reads
    // set, acknowledge it, halt.
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, PlatformMap::TIMER_BASE);
    p.li(Reg::T1, 20);
    p.sw(Reg::T1, Reg::T0, 0x4);
    p.li(Reg::T1, timer::ctrl::ENABLE);
    p.sw(Reg::T1, Reg::T0, 0x0);
    p.label("wait");
    p.lw(Reg::T2, Reg::T0, 0xC);
    p.beq(Reg::T2, Reg::ZERO, "wait");
    // Leave the flag set for a few cycles so the test can observe the
    // line, then acknowledge.
    p.li(Reg::T1, 1);
    p.sw(Reg::T1, Reg::T0, 0xC);
    p.nop();
    p.halt();
    let words = p.assemble().unwrap();

    let mut platform = Platform::new();
    platform.load_boot_program(&words);
    let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);

    let mut raised_cycles = 0u64;
    let mut mask_bits = 0u64;
    while !sys.core().is_halted() {
        sys.step_cycle(&mut |bus: &mut Tlm1Bus| {
            if bus.irq_mask() != 0 {
                raised_cycles += 1;
                mask_bits |= bus.irq_mask();
            }
        });
        assert!(raised_cycles < 10_000, "runaway");
    }
    assert!(raised_cycles > 0, "the timer line never asserted");
    assert_eq!(
        mask_bits,
        1 << PlatformMap::TIMER.0,
        "only the timer's line should assert"
    );
    // After the acknowledge, the line is low again.
    assert_eq!(sys.bus().irq_mask(), 0);
}

#[test]
fn uart_rx_line_follows_fifo_state() {
    // Software polls the UART and drains one received byte.
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, PlatformMap::UART_BASE);
    p.label("wait");
    p.lw(Reg::T1, Reg::T0, 0x4);
    p.andi(Reg::T1, Reg::T1, 0x2); // RX_READY
    p.beq(Reg::T1, Reg::ZERO, "wait");
    p.lw(Reg::T2, Reg::T0, 0x0); // drain the byte
    p.halt();
    let words = p.assemble().unwrap();

    let mut platform = Platform::new();
    platform.uart.receive(0x42);
    platform.load_boot_program(&words);
    let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);

    let mut saw_uart_line = false;
    while !sys.core().is_halted() {
        sys.step_cycle(&mut |bus: &mut Tlm1Bus| {
            if bus.irq_mask() & (1 << PlatformMap::UART.0) != 0 {
                saw_uart_line = true;
            }
        });
    }
    assert!(saw_uart_line);
    assert_eq!(sys.core().reg(Reg::T2), 0x42);
    assert_eq!(sys.bus().irq_mask(), 0, "line drops once the fifo drains");
}

#[test]
fn crypto_done_line_asserts_until_restart() {
    use hierbus::soc::crypto;
    let platform = Platform::new();
    let mut bus = platform.into_tlm1();
    // Drive the coprocessor directly through the slave interface.
    let base = PlatformMap::CRYPTO_BASE as u64;
    {
        let c = bus.slave_mut(PlatformMap::CRYPTO);
        c.write_word(Address::new(base), crypto::ctrl::START_ENC, 0b1111);
        c.tick(100); // block latency elapses
    }
    {
        let c = bus.slave_mut(PlatformMap::CRYPTO);
        assert!(c.irq(), "done flag must assert the line");
        // Restarting clears done (and the line) while busy.
        assert_eq!(
            c.write_word(Address::new(base), crypto::ctrl::START_ENC, 0b1111),
            SlaveReply::Ok(())
        );
        assert!(!c.irq());
    }
}
