//! Daemon protocol behavior: request/response correlation, error
//! reporting, graceful drain, and bit-exactness of served results
//! against the batch harness.

use hierbus::harness;
use hierbus::serve::{Daemon, DaemonOptions, ScenarioSpec};
use hierbus_campaign::Json;
use hierbus_ec::MixParams;
use hierbus_power::CharacterizationDb;
use std::collections::VecDeque;
use std::io::{BufReader, Cursor, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Output sink shared with [`GatedReader`]: the daemon's responses
/// accumulate here so later input can be gated on earlier output.
#[derive(Clone, Default)]
struct SharedOut(Arc<Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedOut {
    fn take(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf-8 output")
    }

    fn contains(&self, needle: &str) -> bool {
        self.0
            .lock()
            .unwrap()
            .windows(needle.len())
            .any(|w| w == needle.as_bytes())
    }
}

/// Input released in steps: a step's bytes become readable only once
/// the session output contains its marker. Pipelining a `shutdown`
/// behind a `run` is inherently racy over instant in-memory input —
/// the reader thread can flag the shutdown before the serving loop
/// pops the run — so these tests pin the ordering they mean to test.
struct GatedReader {
    steps: VecDeque<(Option<&'static str>, String)>,
    out: SharedOut,
    current: Cursor<Vec<u8>>,
}

impl GatedReader {
    fn new(steps: Vec<(Option<&'static str>, String)>, out: SharedOut) -> Self {
        GatedReader {
            steps: steps.into_iter().collect(),
            out,
            current: Cursor::new(Vec::new()),
        }
    }
}

impl Read for GatedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            let n = self.current.read(buf)?;
            if n > 0 {
                return Ok(n);
            }
            let Some((gate, text)) = self.steps.pop_front() else {
                return Ok(0);
            };
            if let Some(marker) = gate {
                let deadline = Instant::now() + Duration::from_secs(60);
                while !self.out.contains(marker) {
                    assert!(
                        Instant::now() < deadline,
                        "gate marker {marker:?} never appeared in the output"
                    );
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            self.current = Cursor::new(text.into_bytes());
        }
    }
}

fn daemon(workers: usize) -> Daemon {
    Daemon::new(
        Arc::new(CharacterizationDb::uniform()),
        DaemonOptions {
            workers,
            ..DaemonOptions::default()
        },
    )
}

/// Runs one session over in-memory buffers, returning the parsed
/// response events plus the session summary.
fn session(daemon: &Daemon, script: &str) -> (Vec<Json>, hierbus::serve::ServeSummary) {
    let mut output = Vec::new();
    let summary = daemon
        .serve(Cursor::new(script.to_owned()), &mut output)
        .expect("in-memory session");
    let events = String::from_utf8(output)
        .expect("utf-8 output")
        .lines()
        .map(|l| Json::parse(l).expect("every response line is JSON"))
        .collect();
    (events, summary)
}

fn field<'a>(event: &'a Json, name: &str) -> &'a Json {
    event.get(name).unwrap_or_else(|| panic!("missing {name}"))
}

fn event_name(event: &Json) -> &str {
    field(event, "event").as_str().unwrap()
}

#[test]
fn ping_stats_and_errors_are_correlated() {
    let d = daemon(1);
    let script = [
        r#"{"v":1,"id":"p1","op":"ping"}"#,
        r#"{"v":1,"id":"s1","op":"stats"}"#,
        r#"{"v":1,"id":"bad-op","op":"dance"}"#,
        r#"{"v":3,"id":"bad-version","op":"ping"}"#,
        "this is not json",
        r#"{"v":1,"id":"bad-name","op":"run","scenarios":[{"kind":"named","name":"nope"}]}"#,
    ]
    .join("\n");
    let (events, summary) = session(&d, &script);
    assert_eq!(events.len(), 6);
    assert_eq!(event_name(&events[0]), "pong");
    assert_eq!(field(&events[0], "req").as_str(), Some("p1"));
    assert_eq!(event_name(&events[1]), "stats");
    assert_eq!(field(&events[1], "cache_len").as_u64(), Some(0));
    assert_eq!(field(&events[1], "workers").as_u64(), Some(1));
    // Empty histogram: percentiles are null, not fabricated.
    assert!(matches!(field(&events[1], "latency_p50_us"), Json::Null));
    for (event, id) in events[2..5].iter().zip(["bad-op", "bad-version", ""]) {
        assert_eq!(event_name(event), "error");
        assert_eq!(field(event, "req").as_str(), Some(id));
    }
    assert_eq!(event_name(&events[5]), "error");
    assert!(field(&events[5], "message")
        .as_str()
        .unwrap()
        .contains("unknown scenario name"));
    assert!(!summary.shutdown, "EOF is not a shutdown");
    // ping, stats, and the failed run were handled; malformed lines
    // were answered but never dispatched.
    assert_eq!(summary.requests, 3);
}

#[test]
fn run_streams_results_then_done_and_shutdown_says_bye() {
    let d = daemon(2);
    // The shutdown line is released only after the run's `done` event,
    // so the run is served, never retried.
    let out = SharedOut::default();
    let input = BufReader::new(GatedReader::new(
        vec![
            (
                None,
                concat!(
                    r#"{"v":1,"id":"r1","op":"run","scenarios":"#,
                    r#"[{"kind":"named","name":"burst_reads"},{"kind":"mix","seed":5,"count":50}]}"#,
                    "\n"
                )
                .to_owned(),
            ),
            (
                Some(r#""event":"done""#),
                concat!(r#"{"v":1,"id":"q","op":"shutdown"}"#, "\n").to_owned(),
            ),
        ],
        out.clone(),
    ));
    let summary = d.serve(input, out.clone()).expect("in-memory session");
    let events: Vec<Json> = out
        .take()
        .lines()
        .map(|l| Json::parse(l).expect("every response line is JSON"))
        .collect();
    assert!(summary.shutdown);
    let results: Vec<&Json> = events
        .iter()
        .filter(|e| event_name(e) == "result")
        .collect();
    assert_eq!(results.len(), 2);
    for r in &results {
        assert_eq!(field(r, "req").as_str(), Some("r1"));
        assert_eq!(field(r, "cached").as_bool(), Some(false));
        let payload = field(r, "result");
        assert!(payload.get("cycles").unwrap().as_u64().unwrap() > 0);
        assert!(payload.get("energy_pj").unwrap().as_f64().unwrap() > 0.0);
    }
    // Both scenario indices are covered exactly once.
    let mut indices: Vec<u64> = results
        .iter()
        .map(|r| field(r, "index").as_u64().unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, [0, 1]);
    let done = events
        .iter()
        .find(|e| event_name(e) == "done")
        .expect("terminal done event");
    assert_eq!(field(done, "scenarios").as_u64(), Some(2));
    assert_eq!(field(done, "misses").as_u64(), Some(2));
    assert_eq!(event_name(events.last().unwrap()), "bye");
    assert_eq!(field(events.last().unwrap(), "req").as_str(), Some("q"));
}

#[test]
fn shutdown_drains_and_retries_queued_requests() {
    let d = daemon(1);
    // The first request's second scenario is big enough to still be in
    // flight when the rest of the script lands: the follow-up run and
    // the shutdown are released the moment the first result event is
    // streamed, so the follow-up is queued when the shutdown flag is
    // raised and must be answered with a retryable status.
    let out = SharedOut::default();
    let input = BufReader::new(GatedReader::new(
        vec![
            (
                None,
                concat!(
                    r#"{"v":1,"id":"inflight","op":"run","scenarios":"#,
                    r#"[{"kind":"mix","seed":1,"count":50},{"kind":"mix","seed":2,"count":20000}]}"#,
                    "\n"
                )
                .to_owned(),
            ),
            (
                Some(r#""event":"result""#),
                concat!(
                    r#"{"v":1,"id":"queued","op":"run","scenarios":[{"kind":"named","name":"single_read"}]}"#,
                    "\n",
                    r#"{"v":1,"id":"bye","op":"shutdown"}"#,
                    "\n"
                )
                .to_owned(),
            ),
        ],
        out.clone(),
    ));
    let summary = d.serve(input, out.clone()).expect("in-memory session");
    let events: Vec<Json> = out
        .take()
        .lines()
        .map(|l| Json::parse(l).expect("every response line is JSON"))
        .collect();
    assert!(summary.shutdown);
    assert_eq!(summary.retried, 1, "the queued run must be retried");
    // The in-flight request finished cleanly: both results + done.
    let inflight: Vec<&Json> = events
        .iter()
        .filter(|e| field(e, "req").as_str() == Some("inflight"))
        .collect();
    assert_eq!(inflight.len(), 3);
    assert_eq!(event_name(inflight.last().unwrap()), "done");
    // The queued request got a clean retryable status, not silence.
    let retry = events
        .iter()
        .find(|e| field(e, "req").as_str() == Some("queued"))
        .expect("queued request answered");
    assert_eq!(event_name(retry), "retry");
    assert_eq!(field(retry, "reason").as_str(), Some("shutting-down"));
    assert_eq!(event_name(events.last().unwrap()), "bye");
}

#[test]
fn served_results_match_the_batch_harness_bit_exactly() {
    // The daemon must never drift from the tools it replaces: its lean
    // serve-side session and `harness::run_layer1` agree on cycles and
    // energy to the last bit.
    let db = harness::standard_db();
    let d = Daemon::new(
        Arc::new(db.clone()),
        DaemonOptions {
            workers: 2,
            ..DaemonOptions::default()
        },
    );
    let specs = [
        ScenarioSpec::Named {
            name: "burst_writes".to_owned(),
        },
        ScenarioSpec::Mix {
            seed: 99,
            params: MixParams {
                count: 150,
                ..MixParams::default()
            },
            waits: None,
        },
    ];
    let line = Json::Obj(vec![
        ("v".to_owned(), Json::Num(1.0)),
        ("id".to_owned(), Json::Str("x".to_owned())),
        ("op".to_owned(), Json::Str("run".to_owned())),
        (
            "scenarios".to_owned(),
            Json::Arr(specs.iter().map(ScenarioSpec::to_json).collect()),
        ),
    ])
    .to_string_compact();
    let (events, _) = session(&d, &line);
    for event in events.iter().filter(|e| event_name(e) == "result") {
        let index = field(event, "index").as_u64().unwrap() as usize;
        let hierbus::serve::Materialized::Single(scenario) = specs[index].materialize().unwrap()
        else {
            panic!("these specs are single-master")
        };
        let expected = harness::run_layer1(&scenario, &db);
        let payload = field(event, "result");
        assert_eq!(
            payload.get("cycles").unwrap().as_u64(),
            Some(expected.cycles)
        );
        let served = payload.get("energy_pj").unwrap().as_f64().unwrap();
        assert_eq!(
            served.to_bits(),
            expected.energy_pj.to_bits(),
            "served energy differs from run_layer1 at spec {index}"
        );
    }
}

#[test]
fn drain_under_load_retries_every_queued_request_without_interleaving() {
    let d = daemon(1);
    // A run with a large trailing scenario is in flight; the moment its
    // first result streams, a pipelined burst lands at once: two more
    // runs, a malformed line, a ping, and the shutdown. Everything
    // queued when the shutdown flag is raised must get a deterministic
    // answer — `retry`/`error`, in submission order, never silence —
    // and none of it may interleave into the in-flight request's
    // result stream.
    let out = SharedOut::default();
    let input = BufReader::new(GatedReader::new(
        vec![
            (
                None,
                concat!(
                    r#"{"v":1,"id":"inflight","op":"run","scenarios":"#,
                    r#"[{"kind":"mix","seed":1,"count":50},{"kind":"mix","seed":2,"count":20000}]}"#,
                    "\n"
                )
                .to_owned(),
            ),
            (
                Some(r#""event":"result""#),
                concat!(
                    r#"{"v":1,"id":"q1","op":"run","scenarios":[{"kind":"named","name":"single_read"}]}"#,
                    "\n",
                    r#"{"v":1,"id":"q2","op":"run","scenarios":[{"kind":"multi","seed":3,"cpu_count":10}]}"#,
                    "\n",
                    "this is not json\n",
                    r#"{"v":1,"id":"q3","op":"ping"}"#,
                    "\n",
                    r#"{"v":1,"id":"bye","op":"shutdown"}"#,
                    "\n"
                )
                .to_owned(),
            ),
        ],
        out.clone(),
    ));
    let summary = d.serve(input, out.clone()).expect("in-memory session");
    let events: Vec<Json> = out
        .take()
        .lines()
        .map(|l| Json::parse(l).expect("every response line is JSON"))
        .collect();
    assert!(summary.shutdown);
    assert_eq!(summary.retried, 4, "q1, q2, the bad line and q3");
    // The in-flight request finished uncorrupted: both results (indices
    // 0 and 1, in order) and its done event, contiguously.
    let inflight: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| field(e, "req").as_str() == Some("inflight"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(inflight, vec![0, 1, 2], "in-flight stream was interleaved");
    assert_eq!(event_name(&events[2]), "done");
    for (slot, index) in inflight[..2].iter().zip([0u64, 1]) {
        assert_eq!(event_name(&events[*slot]), "result");
        assert_eq!(field(&events[*slot], "index").as_u64(), Some(index));
    }
    // The queued requests were answered in submission order with
    // deterministic statuses: retry, retry, error, retry.
    let expected = [
        ("q1", "retry"),
        ("q2", "retry"),
        ("", "error"),
        ("q3", "retry"),
    ];
    for (event, (id, name)) in events[3..7].iter().zip(expected) {
        assert_eq!(event_name(event), name);
        assert_eq!(field(event, "req").as_str(), Some(id));
        if name == "retry" {
            assert_eq!(field(event, "reason").as_str(), Some("shutting-down"));
        }
    }
    assert_eq!(event_name(events.last().unwrap()), "bye");
    assert_eq!(events.len(), 8);
}

#[test]
fn served_multi_results_match_the_multi_harness_bit_exactly() {
    use hierbus::serve::Materialized;
    use hierbus_ec::{ArbitrationPolicy, BurstLen, DmaParams};

    let db = harness::standard_db();
    let d = Daemon::new(
        Arc::new(db.clone()),
        DaemonOptions {
            workers: 2,
            ..DaemonOptions::default()
        },
    );
    let specs = [
        ScenarioSpec::Multi {
            seed: 21,
            policy: ArbitrationPolicy::FixedPriority,
            cpu_count: 60,
            dma: DmaParams::default(),
        },
        ScenarioSpec::Multi {
            seed: 21,
            policy: ArbitrationPolicy::RoundRobin,
            cpu_count: 60,
            dma: DmaParams {
                burst: BurstLen::B8,
                ..DmaParams::default()
            },
        },
    ];
    let line = Json::Obj(vec![
        ("v".to_owned(), Json::Num(1.0)),
        ("id".to_owned(), Json::Str("m".to_owned())),
        ("op".to_owned(), Json::Str("run".to_owned())),
        (
            "scenarios".to_owned(),
            Json::Arr(specs.iter().map(ScenarioSpec::to_json).collect()),
        ),
    ])
    .to_string_compact();
    let (events, summary) = session(&d, &line);
    assert_eq!(summary.cache_misses, 2);
    let mut seen = 0;
    for event in events.iter().filter(|e| event_name(e) == "result") {
        let index = field(event, "index").as_u64().unwrap() as usize;
        let Materialized::Multi(ms) = specs[index].materialize().unwrap() else {
            panic!("multi specs are multi-master")
        };
        let expected = harness::multi::run_layer1(&ms, &db, &[]);
        let payload = field(event, "result");
        assert_eq!(
            payload.get("cycles").unwrap().as_u64(),
            Some(expected.cycles),
            "spec {index}"
        );
        let served = payload.get("energy_pj").unwrap().as_f64().unwrap();
        assert_eq!(
            served.to_bits(),
            expected.energy_pj.to_bits(),
            "served multi energy differs from the multi harness at spec {index}"
        );
        seen += 1;
    }
    assert_eq!(seen, 2);
    // Resubmission replays the identical bytes from cache. Both
    // sessions stream results in completion order, which two workers
    // make nondeterministic — so pair the payloads by scenario index.
    let (replay, summary) = session(&d, &line);
    assert_eq!((summary.cache_hits, summary.cache_misses), (2, 0));
    let payload_of = |evs: &[Json], index: u64| {
        evs.iter()
            .filter(|e| event_name(e) == "result")
            .find(|e| field(e, "index").as_u64() == Some(index))
            .map(|e| field(e, "result").clone())
            .expect("one result per scenario index")
    };
    let mut replayed = 0;
    for event in replay.iter().filter(|e| event_name(e) == "result") {
        assert_eq!(field(event, "cached").as_bool(), Some(true));
        let index = field(event, "index").as_u64().unwrap();
        assert_eq!(field(event, "result"), &payload_of(&events, index));
        replayed += 1;
    }
    assert_eq!(replayed, 2);
}

#[test]
fn cache_index_persists_across_daemons_and_rejects_foreign_dbs() {
    let dir = std::env::temp_dir().join("hierbus_serve_index_test");
    let _ = std::fs::remove_dir_all(&dir);
    let index = dir.join("cache.index.json");
    let opts = || DaemonOptions {
        workers: 1,
        cache_capacity: 16,
        cache_index: Some(index.clone()),
        ..DaemonOptions::default()
    };
    let script =
        r#"{"v":1,"id":"a","op":"run","scenarios":[{"kind":"named","name":"burst_reads"}]}"#;

    let first = Daemon::new(Arc::new(CharacterizationDb::uniform()), opts());
    let (_, summary) = session(&first, script);
    assert_eq!((summary.cache_hits, summary.cache_misses), (0, 1));
    assert!(index.is_file(), "drain must flush the index");

    // A new daemon over the same database starts warm.
    let second = Daemon::new(Arc::new(CharacterizationDb::uniform()), opts());
    assert_eq!(second.cache_len(), 1);
    let (events, summary) = session(&second, script);
    assert_eq!((summary.cache_hits, summary.cache_misses), (1, 0));
    let result = events
        .iter()
        .find(|e| event_name(e) == "result")
        .expect("result event");
    assert_eq!(field(result, "cached").as_bool(), Some(true));

    // A daemon over a different characterization must not replay it.
    let foreign = Daemon::new(Arc::new(harness::standard_db()), opts());
    assert_eq!(foreign.cache_len(), 0, "foreign index must be discarded");
    let _ = std::fs::remove_dir_all(&dir);
}
