//! Cross-layer arbitration equivalence: a CPU scenario and a DMA
//! descriptor program behind one arbiter, replayed at every abstraction
//! level, must agree — identical per-master outcomes and committed
//! memory at all three layers, cycle-exact grant lines between the RTL
//! reference and layer 1, the layer-1 characterized energy reproduced
//! over real RTL frames to 1e-9 relative, per-master ledger slices
//! summing to each layer's attributed total, and fault/tear replays
//! staying layer-invariant under contention. Campaigns over the new
//! arbitration axes must stay byte-identical for any worker count.

use hierbus::ec::sequences::{self, MasterOp, MixParams, Scenario};
use hierbus::ec::{
    ArbitrationPolicy, BurstLen, DmaParams, DmaProgram, FaultKind, FaultPlan, MultiScenario,
    OpFault, RetryPolicy, WaitProfile,
};
use hierbus::harness::multi::{run_layer1, run_layer2, run_reference, MasterFaults, MultiRun};
use hierbus::harness::shared_db;
use hierbus::power::CharacterizationDb;

/// Relative agreement pin for energy totals.
fn assert_close(tag: &str, a: f64, b: f64) {
    let denom = a.abs().max(b.abs()).max(1e-12);
    assert!(
        ((a - b).abs() / denom) < 1e-9,
        "{tag}: {a} vs {b} (rel err {})",
        (a - b).abs() / denom
    );
}

/// A seeded CPU+DMA contention scenario: the CPU mix lives in
/// [0, 0x1_0000), the DMA program in [0x1_0000, 0x2_0000), so the two
/// masters contend for the bus but never race on memory.
fn contention_scenario(
    seed: u64,
    policy: ArbitrationPolicy,
    burst: BurstLen,
    cpu_count: usize,
    descriptors: usize,
) -> MultiScenario {
    let cpu = sequences::random_mix(
        seed,
        MixParams {
            count: cpu_count,
            ..MixParams::default()
        },
    );
    let dma = DmaProgram::seeded(
        seed ^ 0xD31A,
        DmaParams {
            descriptors,
            burst,
            ..DmaParams::default()
        },
    );
    MultiScenario::new("contention", cpu, &dma, policy)
}

fn all_layers(
    ms: &MultiScenario,
    db: &CharacterizationDb,
    faults: &[MasterFaults],
) -> (MultiRun, MultiRun, MultiRun) {
    (
        run_reference(ms, db, faults),
        run_layer1(ms, db, faults),
        run_layer2(ms, db, faults),
    )
}

/// The layer-invariant multi-master contract.
fn assert_agreement(tag: &str, rtl: &MultiRun, l1: &MultiRun, l2: &MultiRun) {
    // Per-master outcomes and fault counters agree everywhere.
    assert_eq!(rtl.outcomes(), l1.outcomes(), "{tag}: rtl vs l1 outcomes");
    assert_eq!(l1.outcomes(), l2.outcomes(), "{tag}: l1 vs l2 outcomes");
    for (i, (r, o)) in rtl.masters.iter().zip(l1.masters.iter()).enumerate() {
        assert_eq!(r.fault, o.fault, "{tag}: master {i} rtl vs l1 counters");
    }
    for (i, (r, o)) in l1.masters.iter().zip(l2.masters.iter()).enumerate() {
        assert_eq!(r.fault, o.fault, "{tag}: master {i} l1 vs l2 counters");
    }
    // Committed memory agrees everywhere.
    assert_eq!(rtl.memory, l1.memory, "{tag}: rtl vs l1 memory");
    assert_eq!(l1.memory, l2.memory, "{tag}: l1 vs l2 memory");
    // Layer 1 is cycle-exact, grant line for grant line, record for
    // record; layer 2 prices contention coarsely but never optimistically.
    assert_eq!(rtl.cycles, l1.cycles, "{tag}: layer 1 not cycle-exact");
    assert_eq!(rtl.grants, l1.grants, "{tag}: grant lines diverge");
    for (i, (r, o)) in rtl.masters.iter().zip(l1.masters.iter()).enumerate() {
        assert_eq!(r.records, o.records, "{tag}: master {i} records diverge");
    }
    assert!(
        l2.cycles >= l1.cycles,
        "{tag}: layer 2 optimistic ({} < {})",
        l2.cycles,
        l1.cycles
    );
    // Every layer grants exactly once per issued attempt.
    for run in [rtl, l1, l2] {
        let attempts: usize = run.masters.iter().map(|m| m.records.len()).sum();
        assert_eq!(run.grants.len(), attempts, "{tag}: grants != attempts");
        for (i, m) in run.masters.iter().enumerate() {
            assert_eq!(
                run.stats.grants[i] as usize,
                m.records.len(),
                "{tag}: master {i} grant count"
            );
        }
    }
    // The layer-1 characterized model over the *RTL frame log* equals
    // the layer-1 TLM run's energy to 1e-9 relative.
    let frames_energy = rtl.l1_frames_energy_pj.expect("reference run");
    assert_close(
        &format!("{tag}: l1-over-frames"),
        frames_energy,
        l1.energy_pj,
    );
    // Each layer's master-tagged ledger partitions its own attributed
    // total: the untagged (idle) slice plus the per-master slices sum
    // back to the total the layer reported.
    for (name, run, total) in [
        ("rtl", rtl, frames_energy),
        ("tlm1", l1, l1.energy_pj),
        ("tlm2", l2, l2.energy_pj),
    ] {
        let slices: f64 = run.ledger.master_totals().iter().map(|(_, e)| e).sum();
        assert_close(
            &format!("{tag}: {name} ledger total"),
            run.ledger.total_pj(),
            total,
        );
        assert_close(&format!("{tag}: {name} slice sum"), slices, total);
    }
    // The per-master split itself is layer-exact between the reference
    // and layer 1 (same frames, same spans, same ownership rule).
    for master in [None, Some("cpu"), Some("dma")] {
        assert_close(
            &format!("{tag}: {master:?} split rtl vs l1"),
            rtl.ledger.master_total(master),
            l1.ledger.master_total(master),
        );
    }
}

#[test]
fn contention_sweep_all_layers_agree() {
    let db = shared_db();
    for policy in ArbitrationPolicy::ALL {
        for (seed, burst, cpu_count, descriptors) in [
            (11, BurstLen::Single, 120, 24),
            (12, BurstLen::B4, 120, 16),
            (13, BurstLen::B8, 60, 20),
            (14, BurstLen::B2, 200, 8),
        ] {
            let ms = contention_scenario(seed, policy, burst, cpu_count, descriptors);
            let (rtl, l1, l2) = all_layers(&ms, &db, &[]);
            let tag = format!("{}/seed{}", policy.name(), seed);
            assert_agreement(&tag, &rtl, &l1, &l2);
            // Both masters actually ran and burned energy.
            assert!(l1.ledger.master_total(Some("cpu")) > 0.0, "{tag}");
            assert!(l1.ledger.master_total(Some("dma")) > 0.0, "{tag}");
        }
    }
}

#[test]
fn fixed_priority_never_makes_the_cpu_wait() {
    let db = shared_db();
    for seed in 0..8 {
        let ms = contention_scenario(seed, ArbitrationPolicy::FixedPriority, BurstLen::B4, 80, 12);
        let run = run_layer1(&ms, &db, &[]);
        assert_eq!(run.stats.waits[0], 0, "seed {seed}: cpu waited");
        // ... and the DMA still finishes: fixed priority starves only
        // while the CPU actually requests, which a finite stimulus
        // stops doing.
        assert!(run.masters[1].outcomes.iter().all(|o| o.is_ok()));
    }
}

/// Two saturated symmetric masters: back-to-back CPU reads against a
/// gapless single-beat DMA read stream.
fn saturated_scenario(policy: ArbitrationPolicy) -> MultiScenario {
    let ops: Vec<MasterOp> = (0..64).map(|i| MasterOp::read(0x100 + 4 * i)).collect();
    let cpu = Scenario {
        name: "saturated-cpu",
        ops: ops.into(),
        waits: WaitProfile::ZERO,
    };
    let dma = DmaProgram::seeded(
        5,
        DmaParams {
            descriptors: 64,
            burst: BurstLen::Single,
            read_pct: 100,
            max_gap: 0,
            ..DmaParams::default()
        },
    );
    MultiScenario::new("saturated", cpu, &dma, policy)
}

#[test]
fn round_robin_shares_a_saturated_bus_fairly() {
    let db = shared_db();
    let rr = run_layer1(&saturated_scenario(ArbitrationPolicy::RoundRobin), &db, &[]);
    let fixed = run_layer1(
        &saturated_scenario(ArbitrationPolicy::FixedPriority),
        &db,
        &[],
    );
    // Contention actually happened and round-robin spread the waiting
    // over both masters, evenly for symmetric traffic.
    assert!(rr.stats.contended_cycles > 0);
    assert!(rr.stats.waits[0] > 0 && rr.stats.waits[1] > 0);
    let diff = (rr.stats.waits[0] as i64 - rr.stats.waits[1] as i64).unsigned_abs();
    assert!(diff <= 8, "unbalanced rr waits: {:?}", rr.stats.waits);
    // Fixed priority pushes all of it onto the DMA.
    assert_eq!(fixed.stats.waits[0], 0);
    assert!(
        fixed.stats.waits[1] >= rr.stats.waits[1],
        "fixed {:?} vs rr {:?}",
        fixed.stats.waits,
        rr.stats.waits
    );
    // Round-robin interleaves the grant log more than fixed priority.
    let same_pairs = |g: &[(u64, usize)]| g.windows(2).filter(|w| w[0].1 == w[1].1).count();
    assert!(
        same_pairs(&rr.grants) < same_pairs(&fixed.grants),
        "rr {} vs fixed {}",
        same_pairs(&rr.grants),
        same_pairs(&fixed.grants)
    );
    // No starvation under either policy: everything completed Ok.
    for run in [&rr, &fixed] {
        assert!(run
            .masters
            .iter()
            .all(|m| m.outcomes.iter().all(|o| o.is_ok())));
    }
}

#[test]
fn starvation_freedom_proptest_both_policies() {
    // Seeded property sweep: under both policies every seeded traffic
    // shape completes with all-Ok outcomes (run() would panic on a
    // livelock), one grant per attempt, and disjoint id windows.
    let db = shared_db();
    for policy in ArbitrationPolicy::ALL {
        for seed in 20..28 {
            let ms = contention_scenario(seed, policy, BurstLen::B4, 60, 10);
            let run = run_layer1(&ms, &db, &[]);
            let tag = format!("{}/seed{}", policy.name(), seed);
            assert!(
                run.masters
                    .iter()
                    .all(|m| m.outcomes.iter().all(|o| o.is_ok())),
                "{tag}"
            );
            let attempts: usize = run.masters.iter().map(|m| m.records.len()).sum();
            assert_eq!(run.grants.len(), attempts, "{tag}");
            assert!(run.masters[0]
                .records
                .iter()
                .all(|r| r.id.0 < hierbus::ec::DMA_ID_BASE));
            assert!(run.masters[1]
                .records
                .iter()
                .all(|r| r.id.0 >= hierbus::ec::DMA_ID_BASE));
        }
    }
}

/// A tear-alignment scenario: zero-wait single-beat writes on both
/// masters, so the block-atomic layer-2 transfers commit at the same
/// cycles as the beat-level models and the sweep can demand exact
/// memory agreement at every tear offset.
fn tear_scenario(policy: ArbitrationPolicy) -> MultiScenario {
    let cpu = Scenario {
        name: "tear-cpu",
        ops: vec![
            MasterOp::write(0x100, 0x1111_1111),
            MasterOp::write(0x104, 0x2222_2222).after_idle(1),
            MasterOp::write(0x108, 0x3333_3333),
        ]
        .into(),
        waits: WaitProfile::ZERO,
    };
    let dma = DmaProgram::seeded(
        3,
        DmaParams {
            descriptors: 4,
            burst: BurstLen::Single,
            read_pct: 0,
            max_gap: 1,
            ..DmaParams::default()
        },
    );
    MultiScenario::new("tear", cpu, &dma, policy)
}

#[test]
fn tear_under_contention_commits_identical_memory() {
    let db = shared_db();
    for policy in ArbitrationPolicy::ALL {
        let ms = tear_scenario(policy);
        let full = run_reference(&ms, &db, &[]);
        assert!(!full.torn);
        for t in 0..=full.cycles + 2 {
            let faults = [MasterFaults {
                master: 0,
                plan: FaultPlan::new().with_tear(t),
                policy: RetryPolicy::NONE,
            }];
            let (rtl, l1, l2) = all_layers(&ms, &db, &faults);
            let tag = format!("{}/tear@{t}", policy.name());
            assert_agreement(&tag, &rtl, &l1, &l2);
            if t < full.cycles {
                assert!(rtl.torn && l1.torn && l2.torn, "{tag}: not torn");
            }
        }
    }
}

#[test]
fn faults_on_either_master_stay_layer_invariant_under_contention() {
    let db = shared_db();
    let ms = contention_scenario(31, ArbitrationPolicy::RoundRobin, BurstLen::B4, 40, 8);
    // A transient slave error on a CPU op and a stall on a DMA
    // descriptor, both retried/absorbed under contention.
    let cases: [(&str, Vec<MasterFaults>); 3] = [
        (
            "cpu-error",
            vec![MasterFaults {
                master: 0,
                plan: FaultPlan::new().with_fault(3, OpFault::once(FaultKind::SlaveError)),
                policy: RetryPolicy::retries(3),
            }],
        ),
        (
            "dma-stall",
            vec![MasterFaults {
                master: 1,
                plan: FaultPlan::new().with_fault(2, OpFault::always(FaultKind::Stall(5))),
                policy: RetryPolicy::NONE,
            }],
        ),
        (
            "both",
            vec![
                MasterFaults {
                    master: 0,
                    plan: FaultPlan::new().with_fault(1, OpFault::once(FaultKind::SlaveError)),
                    policy: RetryPolicy::retries(2),
                },
                MasterFaults {
                    master: 1,
                    plan: FaultPlan::new().with_fault(0, OpFault::always(FaultKind::Stall(3))),
                    policy: RetryPolicy::NONE,
                },
            ],
        ),
    ];
    for (tag, faults) in &cases {
        let (rtl, l1, l2) = all_layers(&ms, &db, faults);
        assert_agreement(tag, &rtl, &l1, &l2);
        let injected: u64 = rtl.masters.iter().map(|m| m.fault.injected).sum();
        assert!(injected > 0, "{tag}: no fault fired");
    }
}

#[test]
fn multi_master_campaign_byte_identical_across_worker_counts() {
    use hierbus_campaign::{CampaignOptions, CampaignPayload, Json, Matrix};

    struct Cell(String);
    impl CampaignPayload for Cell {
        fn to_json(&self) -> Json {
            Json::Str(self.0.clone())
        }
        fn from_json(json: &Json) -> Option<Self> {
            json.as_str().map(|s| Cell(s.to_owned()))
        }
    }

    let db = shared_db();
    let bursts = [BurstLen::Single, BurstLen::B4];
    // DMA/CPU traffic ratio axis: (cpu ops, dma descriptors).
    let ratios: [(usize, usize); 2] = [(60, 6), (20, 18)];
    let matrix = Matrix::new()
        .axis(
            "policy",
            ArbitrationPolicy::ALL.iter().map(|p| p.name().to_string()),
        )
        .axis("dma_burst", bursts.iter().map(|b| format!("{b:?}")))
        .axis(
            "ratio",
            ratios.iter().map(|(c, d)| format!("cpu{c}-dma{d}")),
        );

    let run_at = |workers: usize| {
        hierbus_campaign::run(
            &matrix,
            &CampaignOptions::with_workers("arbitration-axis", workers),
            |point| {
                let policy = ArbitrationPolicy::ALL[point.coords[0]];
                let burst = bursts[point.coords[1]];
                let (cpu_count, descriptors) = ratios[point.coords[2]];
                let ms = contention_scenario(99, policy, burst, cpu_count, descriptors);
                let run = run_layer1(&ms, &db, &[]);
                Cell(format!(
                    "cycles={} energy={:?} grants={} stats={:?} ledger={:?}",
                    run.cycles,
                    run.energy_pj,
                    run.grants.len(),
                    run.stats,
                    run.ledger.master_totals(),
                ))
            },
        )
        .unwrap()
        .completed()
        .map(|(p, c)| format!("## {}\n{}\n", p.key, c.0))
        .collect::<String>()
    };

    let sequential = run_at(1);
    assert_eq!(run_at(2), sequential, "2 workers diverge from sequential");
    assert_eq!(run_at(4), sequential, "4 workers diverge from sequential");
}
