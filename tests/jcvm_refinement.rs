//! Communication-refinement correctness (§4.3): the interpreter must be
//! oblivious to whether its operand stack is the functional software
//! model or the hardware stack behind the TLM bus, for every interface
//! configuration.

use hierbus::core::Tlm1Bus;
use hierbus::ec::{Address, AddressRange, DataWidth};
use hierbus::jcvm::workloads::standard_workloads;
use hierbus::jcvm::{
    BusStack, HwStackSlave, IfaceConfig, Interpreter, JcvmError, OperandStack, SoftStack,
};

const BASE: u64 = 0x8000;

fn bus_stack(config: IfaceConfig) -> BusStack<Tlm1Bus> {
    let slave = HwStackSlave::new(
        AddressRange::new(Address::new(BASE), 0x100),
        config.width,
        config.capacity,
        config.waits(),
    );
    BusStack::new(Tlm1Bus::new(vec![Box::new(slave)]), config)
}

#[test]
fn every_workload_matches_on_every_interface() {
    for config in IfaceConfig::all_variants(BASE) {
        for workload in standard_workloads() {
            // Functional reference.
            let mut vm = Interpreter::new();
            let (entry, args) = (workload.build)(&mut vm);
            let mut soft = SoftStack::new(config.capacity);
            let reference = vm
                .run(entry, &args, &mut soft, 50_000_000)
                .unwrap_or_else(|e| panic!("{} soft: {e}", workload.name));

            // Refined model.
            let mut vm = Interpreter::new();
            let (entry, args) = (workload.build)(&mut vm);
            let mut hw = bus_stack(config);
            let refined = vm
                .run(entry, &args, &mut hw, 50_000_000)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, config.label()));

            assert_eq!(
                reference,
                refined,
                "{} differs on {}",
                workload.name,
                config.label()
            );
            assert_eq!(refined, Some(workload.expected));
        }
    }
}

#[test]
fn stack_depth_mirrors_between_models() {
    let config = IfaceConfig::baseline(BASE);
    let mut soft = SoftStack::new(64);
    let mut hw = bus_stack(config);
    let script: [i32; 7] = [5, -3, 1000, 0, i32::MAX, i32::MIN, 42];
    for &v in &script {
        soft.push(v).unwrap();
        hw.push(v).unwrap();
    }
    for _ in 0..script.len() {
        assert_eq!(soft.pop().unwrap(), hw.pop().unwrap());
    }
    assert_eq!(soft.pop(), Err(JcvmError::StackUnderflow));
    assert_eq!(hw.pop(), Err(JcvmError::StackUnderflow));
}

#[test]
fn deep_recursion_overflows_identically() {
    use hierbus::jcvm::{Bytecode, Method, MethodId};
    // A method that pushes and recurses forever: both stacks must report
    // overflow (soft at capacity, hardware via bus error or polling).
    let build = |vm: &mut Interpreter| -> MethodId {
        let me = MethodId(0);
        let id = vm.add_method(Method::new(
            vec![Bytecode::Const(7), Bytecode::Invokestatic(me)],
            0,
            0,
        ));
        assert_eq!(id, me);
        id
    };

    let mut vm = Interpreter::new();
    let entry = build(&mut vm);
    let mut soft = SoftStack::new(16);
    assert_eq!(
        vm.run(entry, &[], &mut soft, 100_000),
        Err(JcvmError::StackOverflow)
    );

    let mut vm = Interpreter::new();
    let entry = build(&mut vm);
    let mut hw = bus_stack(IfaceConfig {
        capacity: 16,
        ..IfaceConfig::baseline(BASE)
    });
    assert_eq!(
        vm.run(entry, &[], &mut hw, 100_000),
        Err(JcvmError::StackOverflow)
    );
}

#[test]
fn sub_word_interfaces_preserve_extreme_values() {
    for width in DataWidth::ALL {
        let config = IfaceConfig {
            width,
            ..IfaceConfig::baseline(BASE)
        };
        let mut hw = bus_stack(config);
        for v in [0, -1, i32::MIN, i32::MAX, 0x00FF_FF00, 0x7F00_00FE] {
            hw.push(v).unwrap();
            assert_eq!(hw.pop().unwrap(), v, "width {width}");
        }
    }
}

#[test]
fn narrower_widths_scale_transactions_linearly() {
    let count_txns = |width: DataWidth| {
        let mut hw = bus_stack(IfaceConfig {
            width,
            ..IfaceConfig::baseline(BASE)
        });
        for i in 0..10 {
            hw.push(i).unwrap();
        }
        for _ in 0..10 {
            hw.pop().unwrap();
        }
        hw.transactions()
    };
    let w32 = count_txns(DataWidth::W32);
    let w16 = count_txns(DataWidth::W16);
    let w8 = count_txns(DataWidth::W8);
    assert_eq!(w16, 2 * w32);
    assert_eq!(w8, 4 * w32);
}
