//! Property-based tests of the cross-model invariants: for *arbitrary*
//! traffic and wait-state configurations, layer 1 is cycle-exact against
//! the RTL reference, layer 2 is never optimistic, data results agree
//! everywhere, and the energy models respect their orderings.

use hierbus::core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus::ec::record::first_divergence;
use hierbus::ec::sequences::{MasterOp, Scenario};
use hierbus::ec::{
    AccessKind, AccessRights, Address, AddressRange, BurstLen, DataWidth, SlaveConfig, WaitProfile,
};
use hierbus::rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};
use proptest::prelude::*;

fn slave_config(waits: WaitProfile) -> SlaveConfig {
    SlaveConfig::new(
        AddressRange::new(Address::new(0), 0x1_0000),
        waits,
        AccessRights::RWX,
    )
}

/// Strategy: a legal master op inside the slave window.
fn arb_op() -> impl Strategy<Value = MasterOp> {
    (
        0u32..3,      // idle
        0u8..4,       // kind selector
        0u64..0x3f00, // word index
        0u8..4,       // burst selector
        proptest::collection::vec(any::<u32>(), 8),
        0u8..3,  // width selector (singles only)
        0u64..4, // byte offset for sub-word
    )
        .prop_map(|(idle, kind, word, burst_sel, data, width_sel, offset)| {
            let burst = match burst_sel {
                0 => BurstLen::Single,
                1 => BurstLen::B2,
                2 => BurstLen::B4,
                _ => BurstLen::B8,
            };
            let kind = match kind {
                0 => AccessKind::InstrFetch,
                1 | 2 => AccessKind::DataRead,
                _ => AccessKind::DataWrite,
            };
            let (width, addr) = if burst.is_burst() {
                (DataWidth::W32, word * 4)
            } else {
                match width_sel {
                    0 => (DataWidth::W8, word * 4 + offset),
                    1 => (DataWidth::W16, word * 4 + (offset & 2)),
                    _ => (DataWidth::W32, word * 4),
                }
            };
            let data = if kind == AccessKind::DataWrite {
                data.into_iter()
                    .take(burst.beats() as usize)
                    .map(|w| w & width.value_mask())
                    .collect()
            } else {
                Vec::new()
            };
            MasterOp {
                idle_before: idle,
                kind,
                addr: Address::new(addr),
                width,
                burst,
                data,
            }
        })
}

fn arb_waits() -> impl Strategy<Value = WaitProfile> {
    (0u32..3, 0u32..4, 0u32..4).prop_map(|(a, r, w)| WaitProfile::new(a, r, w))
}

fn run_rtl(scenario: &Scenario) -> hierbus::rtl::RunReport {
    let mem = SimpleMem::new(slave_config(scenario.waits));
    let mut sys = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        GlitchConfig::off(),
    );
    sys.run(1_000_000)
}

fn run_l1(scenario: &Scenario) -> hierbus::core::TlmReport {
    let mem = MemSlave::new(slave_config(scenario.waits));
    let mut sys = TlmSystem::new(Tlm1Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
    sys.run(1_000_000, |_| {})
}

fn run_l2(scenario: &Scenario) -> hierbus::core::TlmReport {
    let mem = MemSlave::new(slave_config(scenario.waits));
    let mut sys = TlmSystem::new(Tlm2Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
    sys.run(1_000_000, |_| {})
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn layer1_cycle_exact_under_arbitrary_traffic(
        ops in proptest::collection::vec(arb_op(), 1..40),
        waits in arb_waits(),
    ) {
        let scenario = Scenario { name: "prop", ops, waits };
        let rtl = run_rtl(&scenario);
        let l1 = run_l1(&scenario);
        prop_assert_eq!(rtl.cycles, l1.cycles);
        prop_assert!(first_divergence(&rtl.records, &l1.records).is_none());
    }

    #[test]
    fn layer2_pessimistic_but_bounded(
        ops in proptest::collection::vec(arb_op(), 1..40),
        waits in arb_waits(),
    ) {
        let scenario = Scenario { name: "prop", ops, waits };
        let l1 = run_l1(&scenario);
        let l2 = run_l2(&scenario);
        prop_assert!(l2.cycles >= l1.cycles, "layer 2 optimistic: {} < {}", l2.cycles, l1.cycles);
        // Bound: at most one extra cycle per transaction (the burst
        // handoff approximation).
        let bound = l1.cycles + scenario.ops.len() as u64;
        prop_assert!(l2.cycles <= bound, "layer 2 too slow: {} > {}", l2.cycles, bound);
        // Errors always agree; beat data agreement holds only for
        // race-free traffic (concurrent overlapping read/write bursts
        // are a data race whose interleaving the block-atomic layer-2
        // transfer legitimately resolves differently — see the tlm2
        // module docs), so it is checked by the dedicated race-free
        // property below.
        prop_assert_eq!(l1.records.len(), l2.records.len());
        for (a, b) in l1.records.iter().zip(&l2.records) {
            prop_assert_eq!(a.error, b.error);
        }
    }

    #[test]
    fn serialized_traffic_data_agrees_across_all_models(
        ops in proptest::collection::vec(arb_op(), 1..20),
        waits in arb_waits(),
    ) {
        // Force every transaction to complete before the next issues:
        // race-free by construction, so beat data must agree everywhere.
        let ops: Vec<MasterOp> = ops
            .into_iter()
            .map(|op| op.after_idle(48))
            .collect();
        let scenario = Scenario { name: "serial", ops, waits };
        let rtl = run_rtl(&scenario);
        let l1 = run_l1(&scenario);
        let l2 = run_l2(&scenario);
        for (a, b) in rtl.records.iter().zip(&l1.records) {
            prop_assert_eq!(&a.data, &b.data);
        }
        for (a, b) in l1.records.iter().zip(&l2.records) {
            prop_assert_eq!(&a.data, &b.data);
            prop_assert_eq!(a.error, b.error);
        }
    }

    #[test]
    fn write_then_read_returns_written_data(
        word in 0u64..0x100,
        value in any::<u32>(),
        waits in arb_waits(),
    ) {
        let addr = word * 4;
        // The idle gap must outlast the write's worst-case latency, or
        // the read legitimately overtakes it on the independent read
        // channel and returns the old value.
        let scenario = Scenario {
            name: "wrr",
            ops: vec![
                MasterOp::write(addr, value),
                MasterOp::read(addr).after_idle(16),
            ],
            waits,
        };
        for records in [run_rtl(&scenario).records, run_l1(&scenario).records, run_l2(&scenario).records] {
            prop_assert_eq!(records[1].data[0], value);
        }
    }

    #[test]
    fn energy_accumulates_monotonically(
        ops in proptest::collection::vec(arb_op(), 1..30),
    ) {
        use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
        let scenario = Scenario { name: "prop", ops, waits: WaitProfile::ZERO };
        let mem = MemSlave::new(slave_config(scenario.waits));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops);
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut last_total = 0.0f64;
        sys.run(1_000_000, |bus: &mut Tlm1Bus| {
            model.on_frame(bus.last_frame());
            assert!(model.total_energy() >= last_total, "energy decreased");
            assert!(model.energy_last_cycle() >= 0.0);
            last_total = model.total_energy();
        });
        prop_assert!(last_total >= 0.0);
    }

    #[test]
    fn glitchless_reference_transitions_equal_layer1_toggles(
        ops in proptest::collection::vec(arb_op(), 1..25),
        waits in arb_waits(),
    ) {
        use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
        let scenario = Scenario { name: "prop", ops, waits };
        let rtl = run_rtl(&scenario); // glitches off
        let mem = MemSlave::new(slave_config(scenario.waits));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops);
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        sys.run(1_000_000, |bus: &mut Tlm1Bus| model.on_frame(bus.last_frame()));
        // With hazards disabled, the reference's wire transitions are the
        // layer-1 frame-diff toggles exactly — the TLM-to-RTL adapter
        // sees the same signal activity.
        prop_assert_eq!(rtl.transitions, model.toggles().total() as u64);
    }
}
