//! Randomized tests of the cross-model invariants: for *arbitrary*
//! traffic and wait-state configurations, layer 1 is cycle-exact against
//! the RTL reference, layer 2 is never optimistic, data results agree
//! everywhere, and the energy models respect their orderings.
//!
//! Formerly `proptest` properties; now deterministic seeded loops over
//! the same generator so the suite runs with no registry access and
//! every failure reproduces from its printed seed.

use hierbus::core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus::ec::record::first_divergence;
use hierbus::ec::sequences::{MasterOp, Scenario};
use hierbus::ec::{
    AccessKind, AccessRights, Address, AddressRange, BurstLen, DataWidth, SlaveConfig, WaitProfile,
};
use hierbus::rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};
use hierbus::sim::SplitMix64;

const CASES: u64 = 48;

fn slave_config(waits: WaitProfile) -> SlaveConfig {
    SlaveConfig::new(
        AddressRange::new(Address::new(0), 0x1_0000),
        waits,
        AccessRights::RWX,
    )
}

/// A legal random master op inside the slave window (the old proptest
/// strategy, driven by an explicit generator).
fn arb_op(rng: &mut SplitMix64) -> MasterOp {
    let idle = rng.range_u32(0, 3);
    let kind_sel = rng.range_u32(0, 4);
    let word = rng.range_u64(0, 0x3f00);
    let burst = match rng.range_u32(0, 4) {
        0 => BurstLen::Single,
        1 => BurstLen::B2,
        2 => BurstLen::B4,
        _ => BurstLen::B8,
    };
    let raw_data: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
    let width_sel = rng.range_u32(0, 3);
    let offset = rng.range_u64(0, 4);
    let kind = match kind_sel {
        0 => AccessKind::InstrFetch,
        1 | 2 => AccessKind::DataRead,
        _ => AccessKind::DataWrite,
    };
    let (width, addr) = if burst.is_burst() {
        (DataWidth::W32, word * 4)
    } else {
        match width_sel {
            0 => (DataWidth::W8, word * 4 + offset),
            1 => (DataWidth::W16, word * 4 + (offset & 2)),
            _ => (DataWidth::W32, word * 4),
        }
    };
    let data: Vec<u32> = if kind == AccessKind::DataWrite {
        raw_data
            .into_iter()
            .take(burst.beats() as usize)
            .map(|w| w & width.value_mask())
            .collect()
    } else {
        Vec::new()
    };
    MasterOp {
        idle_before: idle,
        kind,
        addr: Address::new(addr),
        width,
        burst,
        data: data.into(),
    }
}

fn arb_ops(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<MasterOp> {
    let n = rng.range_u64(lo as u64, hi as u64) as usize;
    (0..n).map(|_| arb_op(rng)).collect()
}

fn arb_waits(rng: &mut SplitMix64) -> WaitProfile {
    WaitProfile::new(
        rng.range_u32(0, 3),
        rng.range_u32(0, 4),
        rng.range_u32(0, 4),
    )
}

fn run_rtl(scenario: &Scenario) -> hierbus::rtl::RunReport {
    let mem = SimpleMem::new(slave_config(scenario.waits));
    let mut sys = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        GlitchConfig::off(),
    );
    sys.run(1_000_000)
}

fn run_l1(scenario: &Scenario) -> hierbus::core::TlmReport {
    let mem = MemSlave::new(slave_config(scenario.waits));
    let mut sys = TlmSystem::new(Tlm1Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
    sys.run(1_000_000, |_| {})
}

fn run_l2(scenario: &Scenario) -> hierbus::core::TlmReport {
    let mem = MemSlave::new(slave_config(scenario.waits));
    let mut sys = TlmSystem::new(Tlm2Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
    sys.run(1_000_000, |_| {})
}

#[test]
fn layer1_cycle_exact_under_arbitrary_traffic() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A7E_0000 + case);
        let scenario = Scenario {
            name: "prop",
            ops: arb_ops(&mut rng, 1, 40).into(),
            waits: arb_waits(&mut rng),
        };
        let rtl = run_rtl(&scenario);
        let l1 = run_l1(&scenario);
        assert_eq!(rtl.cycles, l1.cycles, "case {case}");
        if let Some((i, r, c)) = first_divergence(&rtl.records, &l1.records) {
            panic!("case {case}: record {i} diverges\n  rtl: {r:?}\n  tlm1: {c:?}");
        }
    }
}

#[test]
fn layer2_pessimistic_but_bounded() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x2B0B_0000 + case);
        let scenario = Scenario {
            name: "prop",
            ops: arb_ops(&mut rng, 1, 40).into(),
            waits: arb_waits(&mut rng),
        };
        let l1 = run_l1(&scenario);
        let l2 = run_l2(&scenario);
        assert!(
            l2.cycles >= l1.cycles,
            "case {case}: layer 2 optimistic: {} < {}",
            l2.cycles,
            l1.cycles
        );
        // Bound: at most one extra cycle per transaction (the burst
        // handoff approximation).
        let bound = l1.cycles + scenario.ops.len() as u64;
        assert!(
            l2.cycles <= bound,
            "case {case}: layer 2 too slow: {} > {}",
            l2.cycles,
            bound
        );
        // Errors always agree; beat data agreement holds only for
        // race-free traffic (concurrent overlapping read/write bursts
        // are a data race whose interleaving the block-atomic layer-2
        // transfer legitimately resolves differently — see the tlm2
        // module docs), so it is checked by the dedicated race-free
        // test below.
        assert_eq!(l1.records.len(), l2.records.len(), "case {case}");
        for (a, b) in l1.records.iter().zip(&l2.records) {
            assert_eq!(a.error, b.error, "case {case}");
        }
    }
}

#[test]
fn serialized_traffic_data_agrees_across_all_models() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3E1A_0000 + case);
        // Force every transaction to complete before the next issues:
        // race-free by construction, so beat data must agree everywhere.
        let ops: Vec<MasterOp> = arb_ops(&mut rng, 1, 20)
            .into_iter()
            .map(|op| op.after_idle(48))
            .collect();
        let scenario = Scenario {
            name: "serial",
            ops: ops.into(),
            waits: arb_waits(&mut rng),
        };
        let rtl = run_rtl(&scenario);
        let l1 = run_l1(&scenario);
        let l2 = run_l2(&scenario);
        for (a, b) in rtl.records.iter().zip(&l1.records) {
            assert_eq!(&a.data, &b.data, "case {case}");
        }
        for (a, b) in l1.records.iter().zip(&l2.records) {
            assert_eq!(&a.data, &b.data, "case {case}");
            assert_eq!(a.error, b.error, "case {case}");
        }
    }
}

#[test]
fn write_then_read_returns_written_data() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x4F0D_0000 + case);
        let addr = rng.range_u64(0, 0x100) * 4;
        let value = rng.next_u32();
        // The idle gap must outlast the write's worst-case latency, or
        // the read legitimately overtakes it on the independent read
        // channel and returns the old value.
        let scenario = Scenario {
            name: "wrr",
            ops: vec![
                MasterOp::write(addr, value),
                MasterOp::read(addr).after_idle(16),
            ]
            .into(),
            waits: arb_waits(&mut rng),
        };
        for records in [
            run_rtl(&scenario).records,
            run_l1(&scenario).records,
            run_l2(&scenario).records,
        ] {
            assert_eq!(records[1].data[0], value, "case {case}");
        }
    }
}

#[test]
fn energy_accumulates_monotonically() {
    use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5E4E_0000 + case);
        let scenario = Scenario {
            name: "prop",
            ops: arb_ops(&mut rng, 1, 30).into(),
            waits: WaitProfile::ZERO,
        };
        let mem = MemSlave::new(slave_config(scenario.waits));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops);
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut last_total = 0.0f64;
        sys.run(1_000_000, |bus: &mut Tlm1Bus| {
            model.on_frame(bus.last_frame());
            assert!(model.total_energy() >= last_total, "energy decreased");
            assert!(model.energy_last_cycle() >= 0.0);
            last_total = model.total_energy();
        });
        assert!(last_total >= 0.0, "case {case}");
    }
}

#[test]
fn reset_reused_model_replays_bit_exact() {
    // A reset() model replaying the same stimulus must agree with a
    // fresh model to the last bit of every energy query — the contract
    // that lets campaign workers keep one model across scenarios.
    use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
    let mut reused = Layer1EnergyModel::new(CharacterizationDb::uniform());
    reused.enable_trace();
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xAE5E_0000 + case);
        let scenario = Scenario {
            name: "reset-prop",
            ops: arb_ops(&mut rng, 1, 30).into(),
            waits: arb_waits(&mut rng),
        };
        reused.reset();
        let mut fresh = Layer1EnergyModel::new(CharacterizationDb::uniform());
        fresh.enable_trace();
        let run_one = |model: &mut Layer1EnergyModel| {
            let mem = MemSlave::new(slave_config(scenario.waits));
            let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
            bus.enable_frames();
            let mut sys = TlmSystem::new(bus, scenario.ops.clone());
            sys.run(1_000_000, |bus: &mut Tlm1Bus| {
                model.on_frame(bus.last_frame());
            });
        };
        run_one(&mut reused);
        run_one(&mut fresh);
        assert_eq!(
            fresh.total_energy().to_bits(),
            reused.total_energy().to_bits(),
            "case {case}: total_energy"
        );
        assert_eq!(
            fresh.energy_last_cycle().to_bits(),
            reused.energy_last_cycle().to_bits(),
            "case {case}: energy_last_cycle"
        );
        assert_eq!(
            fresh.energy_since_last_call().to_bits(),
            reused.energy_since_last_call().to_bits(),
            "case {case}: energy_since_last_call"
        );
        assert_eq!(fresh.toggles(), reused.toggles(), "case {case}: toggles");
        assert_eq!(fresh.trace(), reused.trace(), "case {case}: traces");
    }
}

#[test]
fn reset_reused_session_replays_scenarios_bit_exact() {
    // The same contract one level up: harness::Layer1Session reuse
    // versus a fresh run_layer1 per scenario.
    let db = hierbus::harness::shared_db();
    let mut session = hierbus::harness::Layer1Session::new(&db);
    for case in 0..8 {
        let mut rng = SplitMix64::new(0xBE55_0000 + case);
        let scenario = Scenario {
            name: "session-prop",
            ops: arb_ops(&mut rng, 1, 30).into(),
            waits: arb_waits(&mut rng),
        };
        let reused = session.run(&scenario);
        let fresh = hierbus::harness::run_layer1(&scenario, &db);
        assert_eq!(
            fresh.energy_pj.to_bits(),
            reused.energy_pj.to_bits(),
            "case {case}: energy"
        );
        assert_eq!(fresh.cycles, reused.cycles, "case {case}: cycles");
        assert_eq!(fresh.records, reused.records, "case {case}: records");
        assert_eq!(fresh.trace, reused.trace, "case {case}: trace");
    }
}

#[test]
fn lean_session_matches_full_runner_bit_exact() {
    // The throughput-mode session drops records and the per-cycle trace
    // — pure observers — so its scalar outcome must still equal the
    // full-fidelity runner's bit for bit, across reset-reuse.
    let db = hierbus::harness::shared_db();
    let mut session = hierbus::harness::Layer1LeanSession::new(&db);
    for case in 0..8 {
        let mut rng = SplitMix64::new(0x1EA4_0000 + case);
        let scenario = Scenario {
            name: "lean-prop",
            ops: arb_ops(&mut rng, 1, 30).into(),
            waits: arb_waits(&mut rng),
        };
        let lean = session.run(&scenario);
        let full = hierbus::harness::run_layer1(&scenario, &db);
        assert_eq!(
            full.energy_pj.to_bits(),
            lean.energy_pj.to_bits(),
            "case {case}: energy"
        );
        assert_eq!(full.cycles, lean.cycles, "case {case}: cycles");
    }
}

/// Ops forced to single beats: the block-atomic layer-2 transfer then
/// commits at the same cycle as the beat-level models, so a card tear
/// may demand exact memory agreement (see `tests/fault_equivalence.rs`
/// for the exhaustive fixed-scenario sweep).
fn arb_single_ops(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<MasterOp> {
    arb_ops(rng, lo, hi)
        .into_iter()
        .map(|mut op| {
            if op.burst.is_burst() {
                op.burst = BurstLen::Single;
                op.data = op.data.iter().copied().take(1).collect();
            }
            op
        })
        .collect()
}

#[test]
fn fault_outcomes_agree_across_all_layers_under_random_plans() {
    use hierbus::ec::{FaultParams, FaultPlan, RetryPolicy};
    use hierbus::harness::fault::{run_layer1, run_layer2, run_reference};
    let db = hierbus::harness::shared_db();
    for case in 0..CASES {
        let seed = 0x7FA0_0000 + case;
        let mut rng = SplitMix64::new(seed);
        let scenario = Scenario {
            name: "fault-prop",
            ops: arb_ops(&mut rng, 1, 30).into(),
            waits: arb_waits(&mut rng),
        };
        let plan = FaultPlan::random(seed, scenario.ops.len(), FaultParams::default());
        let policy = RetryPolicy::retries(2);
        let rtl = run_reference(&scenario, &plan, policy);
        let l1 = run_layer1(&scenario, &db, &plan, policy);
        let l2 = run_layer2(&scenario, &db, &plan, policy);
        // Same final verdict for every stimulus op, at every layer.
        assert_eq!(rtl.outcomes, l1.outcomes, "seed {seed:#x}: rtl vs l1");
        assert_eq!(l1.outcomes, l2.outcomes, "seed {seed:#x}: l1 vs l2");
        assert_eq!(rtl.counters, l1.counters, "seed {seed:#x}: counters");
        assert_eq!(l1.counters, l2.counters, "seed {seed:#x}: counters");
        // Layer 1 stays cycle-exact under injection, retries included.
        assert_eq!(rtl.cycles, l1.cycles, "seed {seed:#x}: l1 not cycle-exact");
        if let Some((i, r, c)) = first_divergence(&rtl.records, &l1.records) {
            panic!("seed {seed:#x}: record {i} diverges\n  rtl: {r:?}\n  tlm1: {c:?}");
        }
        // Layer 2 is never optimistic. (No upper bound here: an
        // error-truncated burst legitimately saves layer 1 more beats
        // than the layer-2 handoff approximation accounts for.)
        assert!(
            l2.cycles >= l1.cycles,
            "seed {seed:#x}: layer 2 optimistic: {} < {}",
            l2.cycles,
            l1.cycles
        );
        // And every layer committed the same memory.
        assert_eq!(rtl.memory, l1.memory, "seed {seed:#x}: memory");
        assert_eq!(l1.memory, l2.memory, "seed {seed:#x}: memory");
    }
}

#[test]
fn random_tears_commit_identical_memory_on_single_beat_traffic() {
    use hierbus::ec::{FaultPlan, RetryPolicy};
    use hierbus::harness::fault::{run_layer1, run_layer2, run_reference};
    let db = hierbus::harness::shared_db();
    for case in 0..CASES {
        let seed = 0x8EA2_0000 + case;
        let mut rng = SplitMix64::new(seed);
        let scenario = Scenario {
            name: "tear-prop",
            ops: arb_single_ops(&mut rng, 1, 12).into(),
            waits: arb_waits(&mut rng),
        };
        let tear = rng.range_u64(0, 80);
        let plan = FaultPlan::new().with_tear(tear);
        let rtl = run_reference(&scenario, &plan, RetryPolicy::NONE);
        let l1 = run_layer1(&scenario, &db, &plan, RetryPolicy::NONE);
        let l2 = run_layer2(&scenario, &db, &plan, RetryPolicy::NONE);
        assert_eq!(rtl.outcomes, l1.outcomes, "seed {seed:#x} tear@{tear}");
        assert_eq!(l1.outcomes, l2.outcomes, "seed {seed:#x} tear@{tear}");
        assert_eq!(rtl.memory, l1.memory, "seed {seed:#x} tear@{tear}");
        assert_eq!(l1.memory, l2.memory, "seed {seed:#x} tear@{tear}");
    }
}

#[test]
fn faulted_runs_reproduce_from_their_seed() {
    use hierbus::ec::{FaultParams, FaultPlan, RetryPolicy};
    use hierbus::harness::fault::run_layer1;
    let db = hierbus::harness::shared_db();
    let seed = 0x9D0C_0005u64;
    let mk = || {
        let mut rng = SplitMix64::new(seed);
        Scenario {
            name: "repro",
            ops: arb_ops(&mut rng, 5, 25).into(),
            waits: arb_waits(&mut rng),
        }
    };
    let (a, b) = (mk(), mk());
    let plan_a = FaultPlan::random(seed, a.ops.len(), FaultParams::default());
    let plan_b = FaultPlan::random(seed, b.ops.len(), FaultParams::default());
    assert_eq!(plan_a, plan_b, "plan generation must be seed-deterministic");
    let ra = run_layer1(&a, &db, &plan_a, RetryPolicy::retries(2));
    let rb = run_layer1(&b, &db, &plan_b, RetryPolicy::retries(2));
    assert_eq!(ra.outcomes, rb.outcomes);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.memory, rb.memory);
    assert_eq!(ra.energy_pj.to_bits(), rb.energy_pj.to_bits());
}

#[test]
fn glitchless_reference_transitions_equal_layer1_toggles() {
    use hierbus::power::{CharacterizationDb, Layer1EnergyModel};
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x6700_0000 + case);
        let scenario = Scenario {
            name: "prop",
            ops: arb_ops(&mut rng, 1, 25).into(),
            waits: arb_waits(&mut rng),
        };
        let rtl = run_rtl(&scenario); // glitches off
        let mem = MemSlave::new(slave_config(scenario.waits));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops);
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        sys.run(1_000_000, |bus: &mut Tlm1Bus| {
            model.on_frame(bus.last_frame())
        });
        // With hazards disabled, the reference's wire transitions are the
        // layer-1 frame-diff toggles exactly — the TLM-to-RTL adapter
        // sees the same signal activity.
        assert_eq!(
            rtl.transitions,
            model.toggles().total() as u64,
            "case {case}"
        );
    }
}

#[test]
fn packed_engines_match_scalar_and_bitloop_under_random_traffic() {
    // The lane-parallel contract as a property: for random stimulus,
    // random wait profiles and *random flush cadence* (queries force a
    // flush, so querying at random points exercises every partial batch
    // width), each compiled backend's batched engine, the scalar
    // per-frame engine and the bit-loop reference engine agree on
    // energy, per-class transition counts and the per-cycle trace — to
    // the last bit. The seed is in every assert message.
    use hierbus::power::{Backend, BatchedLayer1, CharacterizationDb, Layer1EnergyModel};
    let backends: Vec<Backend> = Backend::COMPILED
        .iter()
        .copied()
        .filter(|b| b.available())
        .collect();
    for case in 0..CASES {
        let seed = 0x9ACD_0000 + case;
        let mut rng = SplitMix64::new(seed);
        let scenario = Scenario {
            name: "packed-prop",
            ops: arb_ops(&mut rng, 1, 40).into(),
            waits: arb_waits(&mut rng),
        };
        let mut scalar = Layer1EnergyModel::new(CharacterizationDb::uniform());
        scalar.enable_trace();
        let mut bitloop = Layer1EnergyModel::new(CharacterizationDb::uniform());
        bitloop.enable_trace();
        let mut engines: Vec<BatchedLayer1> = backends
            .iter()
            .map(|&b| {
                let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
                m.enable_trace();
                BatchedLayer1::with_backend(m, b)
            })
            .collect();
        let mem = MemSlave::new(slave_config(scenario.waits));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops);
        let mut flush_rng = SplitMix64::new(seed ^ 0xF1A5);
        sys.run(1_000_000, |bus: &mut Tlm1Bus| {
            let frame = *bus.last_frame();
            scalar.on_frame(&frame);
            bitloop.on_frame_reference(&frame);
            for (i, engine) in engines.iter_mut().enumerate() {
                engine.on_frame(&frame);
                // Distinct cadence per engine: flush with probability
                // (i + 1) in 32 — ragged, backend-dependent batch widths.
                if flush_rng.next_u64() % 32 < i as u64 + 1 {
                    engine.model();
                }
            }
        });
        assert_eq!(
            scalar.total_energy().to_bits(),
            bitloop.total_energy().to_bits(),
            "seed {seed:#x}: scalar vs bit-loop"
        );
        assert_eq!(scalar.toggles(), bitloop.toggles(), "seed {seed:#x}");
        assert_eq!(scalar.trace(), bitloop.trace(), "seed {seed:#x}");
        for (engine, &backend) in engines.iter_mut().zip(&backends) {
            let m = engine.model();
            assert_eq!(
                m.total_energy().to_bits(),
                scalar.total_energy().to_bits(),
                "seed {seed:#x}: backend {} energy",
                backend.name()
            );
            assert_eq!(
                m.toggles(),
                scalar.toggles(),
                "seed {seed:#x}: backend {} toggles",
                backend.name()
            );
            assert_eq!(
                m.trace(),
                scalar.trace(),
                "seed {seed:#x}: backend {} trace",
                backend.name()
            );
        }
    }
}

#[test]
fn packed_attribution_ledger_matches_bitloop_buckets() {
    // Attribution rides on the per-cycle trace, so the packed engine
    // must reproduce the bit-loop reference's EnergyLedger bucket by
    // bucket — spans, per-slave splits and residual included.
    use hierbus::power::Layer1EnergyModel;
    let db = hierbus::harness::shared_db();
    for case in 0..8u64 {
        let seed = 0x1ED6_0000 + case;
        let mut rng = SplitMix64::new(seed);
        let scenario = Scenario {
            name: "ledger-prop",
            ops: arb_ops(&mut rng, 4, 30).into(),
            waits: arb_waits(&mut rng),
        };
        // Packed path (active backend) with spans + trace + ledger.
        let packed = hierbus::harness::fault::run_layer1_attributed(
            &scenario,
            &db,
            &hierbus::ec::FaultPlan::new(),
            hierbus::ec::RetryPolicy::NONE,
        );
        // Bit-loop path through the same observed bus wiring.
        let mem = MemSlave::new(slave_config(scenario.waits));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_obs();
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        let mut model = Layer1EnergyModel::new((*db).clone());
        model.enable_trace();
        sys.run(1_000_000, |bus: &mut Tlm1Bus| {
            model.on_frame_reference(bus.last_frame());
        });
        let spans = sys.bus().obs().spans().to_vec();
        let ledger = model
            .ledger(&spans, &hierbus::harness::scenario_slave_map())
            .expect("trace enabled");
        assert_eq!(packed.ledger, ledger, "seed {seed:#x}: ledger buckets");
        assert_eq!(
            packed.run.energy_pj.to_bits(),
            model.total_energy().to_bits(),
            "seed {seed:#x}: total energy"
        );
        assert_eq!(
            packed.trace,
            model.trace().unwrap_or(&[]).to_vec(),
            "seed {seed:#x}: cycle trace"
        );
    }
}
