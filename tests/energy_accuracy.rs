//! Hierarchical energy-estimation accuracy (the Table 2 shape): the
//! layer-1 model underestimates the gate-level reference by single-digit
//! percent (it cannot see glitches or slope spread); the layer-2 model
//! overestimates (it cannot see inter-transaction correlation).

use hierbus::harness;

#[test]
fn table2_shape_l1_under_l2_over() {
    let db = harness::standard_db();
    let summary = harness::accuracy_summary(&harness::evaluation_scenarios(), &db);

    let l1 = summary.l1_energy_error();
    let l2 = summary.l2_energy_error();
    println!(
        "energy: gate {:.1} pJ, L1 {:.1} pJ ({:+.1}%), L2 {:.1} pJ ({:+.1}%)",
        summary.ref_energy,
        summary.l1_energy,
        l1 * 100.0,
        summary.l2_energy,
        l2 * 100.0
    );
    println!(
        "timing: gate {} cy, L1 {} cy ({:+.2}%), L2 {} cy ({:+.2}%)",
        summary.ref_cycles,
        summary.l1_cycles,
        summary.l1_cycle_error() * 100.0,
        summary.l2_cycles,
        summary.l2_cycle_error() * 100.0
    );

    // Layer 1: strictly under, in the band the paper reports (-7.8%).
    assert!(l1 < -0.01, "layer 1 should underestimate, got {l1:+.3}");
    assert!(l1 > -0.20, "layer 1 error too large: {l1:+.3}");

    // Layer 2: strictly over.
    assert!(l2 > 0.01, "layer 2 should overestimate, got {l2:+.3}");
    assert!(l2 < 0.40, "layer 2 error too large: {l2:+.3}");

    // Timing: layer 1 exact, layer 2 slightly pessimistic.
    assert_eq!(summary.l1_cycles, summary.ref_cycles);
    assert!(summary.l2_cycle_error() >= 0.0);
    assert!(summary.l2_cycle_error() < 0.06);
}

#[test]
fn correlation_correction_removes_the_overestimate() {
    let db = harness::standard_db();
    let scenarios = harness::evaluation_scenarios();
    let mut plain = 0.0;
    let mut corrected = 0.0;
    let mut l1 = 0.0;
    for s in &scenarios {
        plain += harness::run_layer2(s, &db, false).energy_pj;
        corrected += harness::run_layer2(s, &db, true).energy_pj;
        l1 += harness::run_layer1(s, &db).energy_pj;
    }
    println!("layer2 plain {plain:.1} pJ, corrected {corrected:.1} pJ, layer1 {l1:.1} pJ");
    // Restoring inter-transaction knowledge removes estimate mass — the
    // whole overestimate is correlation blindness...
    assert!(corrected < plain);
    // ...and the corrected estimate converges on the layer-1 model,
    // which has the same cycle-boundary (glitch-blind) view.
    let gap_to_l1 = (corrected - l1).abs() / l1;
    assert!(
        gap_to_l1 < 0.12,
        "corrected layer 2 vs layer 1: {gap_to_l1:.3}"
    );
}

#[test]
fn glitch_ablation_explains_layer1_gap() {
    let db = harness::standard_db();
    let scenarios = hierbus::ec::sequences::all_scenarios();
    let mut gate_glitchy = 0.0;
    let mut gate_ideal = 0.0;
    let mut l1 = 0.0;
    for s in &scenarios {
        gate_glitchy += harness::run_reference(s, false).energy_pj;
        gate_ideal += harness::run_reference(s, true).energy_pj;
        l1 += harness::run_layer1(s, &db).energy_pj;
    }
    println!("gate glitchy {gate_glitchy:.1} pJ, gate ideal {gate_ideal:.1} pJ, layer1 {l1:.1} pJ");
    // Removing hazards shrinks the reference toward the layer-1 estimate.
    assert!(gate_ideal < gate_glitchy);
    let gap_glitchy = (gate_glitchy - l1).abs() / gate_glitchy;
    let gap_ideal = (gate_ideal - l1).abs() / gate_ideal;
    assert!(
        gap_ideal < gap_glitchy,
        "ideal netlist should sit closer to layer 1 ({gap_ideal:.3} !< {gap_glitchy:.3})"
    );
}
