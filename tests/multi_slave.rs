//! Multi-slave equivalence: traffic spanning several slaves with
//! *different* wait-state profiles and rights must behave identically on
//! the RTL reference and the layer-1 bus, and within bounds on layer 2.

use hierbus::core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus::ec::record::first_divergence;
use hierbus::ec::sequences::MasterOp;
use hierbus::ec::{
    AccessKind, AccessRights, Address, AddressRange, BurstLen, DataWidth, SlaveConfig, WaitProfile,
};
use hierbus::rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};
use hierbus::sim::SplitMix64;

/// Four windows with very different personalities.
fn slave_configs() -> Vec<SlaveConfig> {
    vec![
        // Fast RAM.
        SlaveConfig::new(
            AddressRange::new(Address::new(0x0000), 0x4000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ),
        // Slow EEPROM-ish: slow writes.
        SlaveConfig::new(
            AddressRange::new(Address::new(0x4000), 0x4000),
            WaitProfile::new(0, 1, 8),
            AccessRights::RW,
        ),
        // ROM: no writes at all.
        SlaveConfig::new(
            AddressRange::new(Address::new(0x8000), 0x4000),
            WaitProfile::new(1, 1, 0),
            AccessRights::RX,
        ),
        // Pokey peripheral window.
        SlaveConfig::new(
            AddressRange::new(Address::new(0xC000), 0x4000),
            WaitProfile::new(2, 3, 3),
            AccessRights::RW,
        ),
    ]
}

/// Mixed traffic across all four windows, avoiding rights violations
/// (and adding a couple of deliberate ones at the end).
fn traffic(seed: u64, count: usize) -> Vec<MasterOp> {
    let mut rng = SplitMix64::new(seed);
    let mut ops = Vec::new();
    for _ in 0..count {
        let window = rng.range_u64(0, 4);
        let base = window * 0x4000;
        let addr = base + 4 * rng.range_u64(0, 0x400);
        let op = match window {
            2 => {
                // ROM: reads and fetches only.
                if rng.bool(0.5) {
                    MasterOp::fetch(addr, BurstLen::B4)
                } else {
                    MasterOp::read(addr)
                }
            }
            _ => {
                if rng.bool(0.5) {
                    MasterOp::read(addr)
                } else {
                    MasterOp::write(addr, rng.next_u32())
                }
            }
        };
        ops.push(op.after_idle(rng.range_u32(0, 3)));
    }
    // Deliberate violations: write to ROM, fetch from the peripheral.
    ops.push(MasterOp::write(0x8000, 0xBAD).after_idle(30));
    ops.push(MasterOp::fetch(0xC000, BurstLen::Single).after_idle(30));
    ops
}

fn run_rtl(ops: Vec<MasterOp>) -> hierbus::rtl::RunReport {
    let slaves: Vec<Box<dyn hierbus::rtl::RtlSlaveModel>> = slave_configs()
        .into_iter()
        .map(|c| Box::new(SimpleMem::new(c)) as Box<dyn hierbus::rtl::RtlSlaveModel>)
        .collect();
    let mut sys = RtlSystem::new(ops, slaves, PowerConfig::default(), GlitchConfig::off());
    sys.run(10_000_000)
}

fn tlm_slaves() -> Vec<Box<dyn hierbus::core::TlmSlave>> {
    slave_configs()
        .into_iter()
        .map(|c| Box::new(MemSlave::new(c)) as Box<dyn hierbus::core::TlmSlave>)
        .collect()
}

#[test]
fn layer1_is_cycle_exact_across_heterogeneous_slaves() {
    for seed in 0..4 {
        let ops = traffic(seed, 250);
        let rtl = run_rtl(ops.clone());
        let mut sys = TlmSystem::new(Tlm1Bus::new(tlm_slaves()), ops);
        let l1 = sys.run(10_000_000, |_| {});
        assert_eq!(rtl.cycles, l1.cycles, "seed {seed}");
        if let Some((i, r, c)) = first_divergence(&rtl.records, &l1.records) {
            panic!("seed {seed}: record {i} diverges\n  rtl: {r:?}\n  tlm1: {c:?}");
        }
    }
}

#[test]
fn layer2_stays_pessimistic_and_bounded_across_slaves() {
    for seed in 0..4 {
        let ops = traffic(seed, 250);
        let n = ops.len() as u64;
        let rtl = run_rtl(ops.clone());
        let mut sys = TlmSystem::new(Tlm2Bus::new(tlm_slaves()), ops);
        let l2 = sys.run(10_000_000, |_| {});
        assert!(l2.cycles >= rtl.cycles, "seed {seed}");
        assert!(l2.cycles <= rtl.cycles + n, "seed {seed}");
    }
}

#[test]
fn rights_violations_error_identically() {
    let ops = vec![
        MasterOp::write(0x8000, 1),                               // ROM write
        MasterOp::fetch(0xC000, BurstLen::Single).after_idle(20), // periph fetch
        MasterOp {
            idle_before: 20,
            kind: AccessKind::DataRead,
            addr: Address::new(0x1_0000), // unmapped
            width: DataWidth::W32,
            burst: BurstLen::Single,
            data: Vec::new().into(),
        },
    ];
    let rtl = run_rtl(ops.clone());
    let mut sys = TlmSystem::new(Tlm1Bus::new(tlm_slaves()), ops.clone());
    let l1 = sys.run(100_000, |_| {});
    let mut sys = TlmSystem::new(Tlm2Bus::new(tlm_slaves()), ops);
    let l2 = sys.run(100_000, |_| {});
    for (i, records) in [&rtl.records, &l1.records, &l2.records].iter().enumerate() {
        assert!(
            matches!(
                records[0].error,
                Some(hierbus::ec::BusError::AccessViolation(..))
            ),
            "model {i}: {:?}",
            records[0].error
        );
        assert!(
            matches!(
                records[1].error,
                Some(hierbus::ec::BusError::AccessViolation(..))
            ),
            "model {i}"
        );
        assert!(
            matches!(records[2].error, Some(hierbus::ec::BusError::Decode(_))),
            "model {i}"
        );
    }
}

#[test]
fn per_slave_wait_profiles_shape_latency() {
    // The same single read against each window; latency must follow the
    // window's profile on every model.
    let mut expected = Vec::new();
    for (i, cfg) in slave_configs().iter().enumerate() {
        let addr = (i as u64) * 0x4000;
        let ops = vec![MasterOp::read(addr)];
        let rtl = run_rtl(ops.clone());
        let lat = rtl.records[0].latency().unwrap();
        // addr waits + read waits + 1 completion cycle.
        assert_eq!(
            lat,
            (cfg.waits.address + cfg.waits.read + 1) as u64,
            "window {i}"
        );
        expected.push(lat);
    }
    // Fast RAM 1, EEPROM 2, ROM 3, peripheral 6.
    assert_eq!(expected, vec![1, 2, 3, 6]);
}
