//! The instruction-set simulator as a cross-model oracle: the same MIPS
//! program must produce identical architectural results on the layer-1
//! and layer-2 buses, with layer-2 timing never optimistic.

use hierbus::core::SlaveReply;
use hierbus::ec::Address;
use hierbus::soc::cpu::CpuReport;
use hierbus::soc::{CpuSystem, Platform, PlatformMap, Program, Reg};

/// Runs a program on both layers; returns (layer1, layer2) reports plus
/// the final value of `observe` on each.
fn run_both(words: &[u32], observe: Reg) -> ((CpuReport, u32), (CpuReport, u32)) {
    let l1 = {
        let mut platform = Platform::new();
        platform.load_boot_program(words);
        let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
        let report = sys.run_until_halt(5_000_000, |_| {});
        (report, sys.core().reg(observe))
    };
    let l2 = {
        let mut platform = Platform::new();
        platform.load_boot_program(words);
        let mut sys = CpuSystem::new(platform.into_tlm2(), PlatformMap::RESET_PC);
        let report = sys.run_until_halt(5_000_000, |_| {});
        (report, sys.core().reg(observe))
    };
    (l1, l2)
}

#[test]
fn arithmetic_program_agrees_across_layers() {
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, 123);
    p.li(Reg::T1, 456);
    p.mul(Reg::T2, Reg::T0, Reg::T1);
    p.addiu(Reg::T2, Reg::T2, -88);
    p.halt();
    let words = p.assemble().unwrap();
    let ((r1, v1), (r2, v2)) = run_both(&words, Reg::T2);
    assert_eq!(v1, 123 * 456 - 88);
    assert_eq!(v1, v2);
    assert!(r1.fault.is_none() && r2.fault.is_none());
    assert!(r2.cycles >= r1.cycles, "layer 2 must not be optimistic");
}

#[test]
fn memory_mixed_width_program_agrees() {
    // Write a word to RAM, rewrite one byte and one halfword, read back.
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, PlatformMap::RAM_BASE);
    p.li(Reg::T1, 0xAABB_CCDD);
    p.sw(Reg::T1, Reg::T0, 0x10);
    p.li(Reg::T2, 0x99);
    p.sb(Reg::T2, Reg::T0, 0x11); // byte lane 1
    p.li(Reg::T2, 0x1234);
    p.sh(Reg::T2, Reg::T0, 0x12); // upper halfword
    p.lw(Reg::T3, Reg::T0, 0x10);
    p.halt();
    let words = p.assemble().unwrap();
    let ((_, v1), (_, v2)) = run_both(&words, Reg::T3);
    assert_eq!(v1, 0x1234_99DD);
    assert_eq!(v2, v1);
}

#[test]
fn sign_extension_of_loads() {
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, PlatformMap::RAM_BASE);
    p.li(Reg::T1, 0x0000_80F3);
    p.sw(Reg::T1, Reg::T0, 0);
    p.lb(Reg::T2, Reg::T0, 0); // 0xF3 sign-extends negative
    p.lh(Reg::T3, Reg::T0, 0); // 0x80F3 sign-extends negative
    p.lbu(Reg::T4, Reg::T0, 0);
    p.subu(Reg::T5, Reg::T2, Reg::T4); // (-13) - 243 = -256
    p.halt();
    let words = p.assemble().unwrap();
    let ((_, v1), (_, v2)) = run_both(&words, Reg::T5);
    assert_eq!(v1 as i32, -256);
    assert_eq!(v1, v2);
}

#[test]
fn function_calls_with_jal_jr() {
    // double(x) = x + x, called twice.
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::A0, 21);
    p.jal("double");
    p.mv(Reg::A0, Reg::V0);
    p.jal("double");
    p.halt();
    p.label("double");
    p.addu(Reg::V0, Reg::A0, Reg::A0);
    p.jr(Reg::RA);
    let words = p.assemble().unwrap();
    let ((_, v1), (_, v2)) = run_both(&words, Reg::V0);
    assert_eq!(v1, 84);
    assert_eq!(v1, v2);
}

#[test]
fn eeprom_writes_cost_more_than_ram_writes() {
    let store_loop = |base: u32| {
        let mut p = Program::new(PlatformMap::RESET_PC);
        p.li(Reg::T0, base);
        p.li(Reg::T2, 16);
        p.label("loop");
        p.sw(Reg::T2, Reg::T0, 0);
        p.addiu(Reg::T0, Reg::T0, 4);
        p.addiu(Reg::T2, Reg::T2, -1);
        p.bne(Reg::T2, Reg::ZERO, "loop");
        p.halt();
        p.assemble().unwrap()
    };
    let ((ram, _), _) = run_both(&store_loop(PlatformMap::RAM_BASE), Reg::T2);
    let ((eeprom, _), _) = run_both(&store_loop(PlatformMap::EEPROM_BASE), Reg::T2);
    assert!(
        eeprom.cycles > ram.cycles + 100,
        "eeprom {} vs ram {}: programming waits must show",
        eeprom.cycles,
        ram.cycles
    );
}

#[test]
fn rng_reads_are_deterministic_across_layers() {
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, PlatformMap::RNG_BASE);
    p.lw(Reg::T1, Reg::T0, 0);
    p.lw(Reg::T2, Reg::T0, 0);
    p.xor(Reg::T3, Reg::T1, Reg::T2);
    p.halt();
    let words = p.assemble().unwrap();
    let ((_, v1), (_, v2)) = run_both(&words, Reg::T3);
    assert_ne!(v1, 0, "consecutive draws must differ");
    assert_eq!(v1, v2, "the rng stream is deterministic");
}

#[test]
fn timer_advances_under_instruction_execution() {
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, PlatformMap::TIMER_BASE);
    p.li(Reg::T1, 10_000);
    p.sw(Reg::T1, Reg::T0, 0x4); // T0 count
    p.li(Reg::T1, 1);
    p.sw(Reg::T1, Reg::T0, 0x0); // enable
                                 // Burn some cycles.
    p.li(Reg::T2, 50);
    p.label("burn");
    p.addiu(Reg::T2, Reg::T2, -1);
    p.bne(Reg::T2, Reg::ZERO, "burn");
    p.lw(Reg::T3, Reg::T0, 0x4); // read count back
    p.halt();
    let words = p.assemble().unwrap();
    let ((r1, v1), _) = run_both(&words, Reg::T3);
    assert!(v1 < 10_000, "timer must have counted down");
    assert!(
        (10_000 - v1) as u64 <= r1.cycles,
        "timer cannot count faster than cycles"
    );
}

#[test]
fn uart_transmits_bytes_written_by_software() {
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T0, PlatformMap::UART_BASE);
    p.li(Reg::T1, 2);
    p.sw(Reg::T1, Reg::T0, 0x8); // fast baud
    for b in [0x48u32, 0x49] {
        p.li(Reg::T1, b); // 'H', 'I'
        p.sw(Reg::T1, Reg::T0, 0x0);
    }
    p.label("drain");
    p.lw(Reg::T2, Reg::T0, 0x4);
    p.andi(Reg::T2, Reg::T2, 1);
    p.bne(Reg::T2, Reg::ZERO, "drain");
    p.halt();
    let words = p.assemble().unwrap();

    let mut platform = Platform::new();
    platform.load_boot_program(&words);
    let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
    let report = sys.run_until_halt(1_000_000, |_| {});
    assert!(report.fault.is_none());
    // The UART slave is reachable through the bus; check what it sent by
    // reading its internals via a scratch RAM echo instead: simplest is
    // a functional probe through the slave trait.
    let uart = sys.bus_mut().slave_mut(PlatformMap::UART);
    // STATUS must be idle now.
    match uart.read_word(Address::new(PlatformMap::UART_BASE as u64 + 4)) {
        SlaveReply::Ok(s) => assert_eq!(s & 1, 0, "tx must be idle"),
        other => panic!("status read failed: {other:?}"),
    }
}

#[test]
fn reserved_instruction_faults() {
    let mut platform = Platform::new();
    platform.rom.load(Address::new(0), &[0xFC00_0000]); // unknown opcode
    let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
    let report = sys.run_until_halt(1_000, |_| {});
    assert!(matches!(
        report.fault,
        Some(hierbus::soc::cpu::CpuFault::ReservedInstruction(_))
    ));
}

#[test]
fn cpi_is_reasonable_without_caches() {
    // Every instruction costs at least a fetch; memory ops add a data
    // transaction. A tight ALU loop should sit near CPI 2 (fetch +
    // issue overhead), never below 1.
    let mut p = Program::new(PlatformMap::RESET_PC);
    p.li(Reg::T2, 200);
    p.label("loop");
    p.addiu(Reg::T2, Reg::T2, -1);
    p.bne(Reg::T2, Reg::ZERO, "loop");
    p.halt();
    let words = p.assemble().unwrap();
    let ((r1, _), _) = run_both(&words, Reg::T2);
    let cpi = r1.cpi();
    assert!(cpi >= 1.0, "CPI {cpi} below the fetch bound");
    assert!(cpi < 4.0, "CPI {cpi} unreasonably high for an ALU loop");
}
