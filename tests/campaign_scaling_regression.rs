//! Regression test for the campaign engine's parallel scaling — the
//! test that would have caught the committed 0.84× 4-worker result.
//!
//! A synthetic campaign of cheap, CPU-bound scenarios must not *lose*
//! throughput when a second worker joins on a machine that actually has
//! two CPUs. The tolerance is deliberately loose (thread startup,
//! scheduler noise, shared caches); the old per-scenario claiming with
//! per-scenario rebuild regressed far below it.

use hierbus_campaign::{CampaignOptions, CampaignPayload, Json, Matrix};

const SCENARIOS: usize = 64;
/// 2-worker throughput must be at least this fraction of 1-worker
/// throughput. Genuine parallel speedup shows up well above 1.0; this
/// gate only rejects *negative* scaling.
const TOLERANCE: f64 = 0.80;

struct Digest(u64);

impl CampaignPayload for Digest {
    fn to_json(&self) -> Json {
        Json::Num(self.0 as f64)
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_u64().map(Digest)
    }
}

/// A deterministic CPU-bound unit of work (an LCG churn), heavy enough
/// that claiming overhead is a small fraction of it.
fn churn(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..400_000u32 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

#[test]
fn two_workers_do_not_regress_scenarios_per_sec() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus < 2 {
        println!(
            "skipping campaign scaling regression: only {cpus} CPU available \
             (parallel throughput is unmeasurable on this runner)"
        );
        return;
    }
    let matrix = Matrix::new().axis("seed", (0..SCENARIOS).map(|i| i.to_string()));
    let run_at = |workers: usize| {
        let report = hierbus_campaign::run_with(
            &matrix,
            &CampaignOptions::with_workers("scaling_regression", workers),
            || (),
            |(), point| Digest(churn(point.index as u64)),
        )
        .expect("manifest-less campaign cannot fail on I/O");
        report.stats.scenarios_per_sec()
    };
    // Warm-up pass so thread-pool and page-cache effects hit neither arm.
    let _ = run_at(1);
    let sps_1 = run_at(1);
    let sps_2 = run_at(2);
    let ratio = sps_2 / sps_1;
    println!(
        "campaign scaling: 1 worker {sps_1:.1} scen/s, 2 workers {sps_2:.1} scen/s \
         ({ratio:.2}x, tolerance {TOLERANCE:.2}x)"
    );
    assert!(
        ratio >= TOLERANCE,
        "2-worker throughput regressed: {sps_2:.1} scen/s vs {sps_1:.1} scen/s \
         ({ratio:.2}x < {TOLERANCE:.2}x tolerance)"
    );
}
