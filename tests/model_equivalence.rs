//! Cross-model equivalence: the layer-1 TLM bus must be cycle-exact
//! against the RTL reference (Table 1's 0% row), and the layer-2 model
//! must stay within a small pessimistic margin.

use hierbus_core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus_ec::record::first_divergence;
use hierbus_ec::sequences::{self, MixParams, Scenario};
use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig};
use hierbus_rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};

fn slave_config(scenario: &Scenario) -> SlaveConfig {
    SlaveConfig::new(
        AddressRange::new(Address::new(0), 0x2_0000),
        scenario.waits,
        AccessRights::RWX,
    )
}

fn run_rtl(scenario: &Scenario) -> hierbus_rtl::RunReport {
    let mem = SimpleMem::new(slave_config(scenario));
    let mut sys = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        GlitchConfig::off(),
    );
    sys.run(5_000_000)
}

fn run_tlm1(scenario: &Scenario) -> hierbus_core::TlmReport {
    let mem = MemSlave::new(slave_config(scenario));
    let mut sys = TlmSystem::new(Tlm1Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
    sys.run(5_000_000, |_| {})
}

fn run_tlm2(scenario: &Scenario) -> hierbus_core::TlmReport {
    let mem = MemSlave::new(slave_config(scenario));
    let mut sys = TlmSystem::new(Tlm2Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
    sys.run(5_000_000, |_| {})
}

#[test]
fn layer1_is_cycle_exact_on_the_verification_suite() {
    for scenario in sequences::all_scenarios() {
        let rtl = run_rtl(&scenario);
        let tlm = run_tlm1(&scenario);
        assert_eq!(rtl.cycles, tlm.cycles, "{}", scenario.name);
        if let Some((i, r, c)) = first_divergence(&rtl.records, &tlm.records) {
            panic!(
                "{}: record {i} diverges\n  rtl: {r:?}\n  tlm1: {c:?}",
                scenario.name
            );
        }
    }
}

#[test]
fn layer1_is_cycle_exact_on_random_mixes() {
    for seed in 0..5 {
        let scenario = sequences::random_mix(
            seed,
            MixParams {
                count: 400,
                ..MixParams::default()
            },
        );
        let rtl = run_rtl(&scenario);
        let tlm = run_tlm1(&scenario);
        assert_eq!(rtl.cycles, tlm.cycles, "seed {seed}");
        if let Some((i, r, c)) = first_divergence(&rtl.records, &tlm.records) {
            panic!("seed {seed}: record {i} diverges\n  rtl: {r:?}\n  tlm1: {c:?}");
        }
    }
}

#[test]
fn layer2_timing_error_is_small_and_pessimistic() {
    let mut total_rtl = 0u64;
    let mut total_l2 = 0u64;
    for scenario in sequences::all_scenarios() {
        let rtl = run_rtl(&scenario);
        let l2 = run_tlm2(&scenario);
        assert!(
            l2.cycles >= rtl.cycles,
            "{}: layer 2 optimistic ({} < {})",
            scenario.name,
            l2.cycles,
            rtl.cycles
        );
        total_rtl += rtl.cycles;
        total_l2 += l2.cycles;
    }
    let error = (total_l2 as f64 - total_rtl as f64) / total_rtl as f64;
    assert!(
        error < 0.10,
        "layer-2 suite timing error {:.2}% too large",
        error * 100.0
    );
}

#[test]
fn layer2_matches_architectural_results() {
    for seed in [11, 12] {
        let scenario = sequences::random_mix(
            seed,
            MixParams {
                count: 300,
                ..MixParams::default()
            },
        );
        let l1 = run_tlm1(&scenario);
        let l2 = run_tlm2(&scenario);
        assert_eq!(l1.records.len(), l2.records.len());
        for (a, b) in l1.records.iter().zip(&l2.records) {
            assert_eq!(a.data, b.data, "data mismatch on {}", a.id);
            assert_eq!(a.error, b.error, "error mismatch on {}", a.id);
        }
    }
}

#[test]
fn layer1_frames_match_rtl_settled_wires_without_glitches() {
    for scenario in sequences::all_scenarios() {
        let mem = SimpleMem::new(slave_config(&scenario));
        let mut rtl = RtlSystem::new(
            scenario.ops.clone(),
            vec![Box::new(mem)],
            PowerConfig::default(),
            GlitchConfig::off(),
        );
        rtl.enable_frame_log();
        let rtl_report = rtl.run(100_000);

        let mem = MemSlave::new(slave_config(&scenario));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, scenario.ops.clone());
        let mut frames = Vec::new();
        sys.run(100_000, |b: &mut Tlm1Bus| frames.push(*b.last_frame()));

        let rtl_frames = rtl.frames().expect("frame log enabled");
        // With frame emission on, the layer-1 bus process runs every
        // cycle (like the RTL), so the frame streams must be identical,
        // idle gaps and the trailing return-to-idle cycle included.
        assert_eq!(
            frames.len(),
            rtl_frames.len(),
            "{}: frame count (report: {} cycles)",
            scenario.name,
            rtl_report.cycles
        );
        for (i, (t, r)) in frames.iter().zip(rtl_frames.iter()).enumerate() {
            assert_eq!(t, r, "{}: frame {i} differs", scenario.name);
        }
    }
}
