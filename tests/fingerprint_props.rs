//! Seeded property coverage for the campaign [`Fingerprint`] and its
//! two client derivations, matrix fingerprints and serve scenario-spec
//! fingerprints.
//!
//! The fingerprint is load-bearing in three places — manifest
//! compatibility checks, the serve result cache's content addresses,
//! and the characterization-database identity — so these tests pin the
//! properties those uses rely on:
//!
//! * field sequences are absorbed with an out-of-band terminator, so
//!   distinct sequences (different bytes, different boundaries,
//!   different field counts) get distinct fingerprints;
//! * `f64` absorption is bit-exact (sign of zero, NaN payloads, single
//!   ulps all distinguish);
//! * spec fingerprints are insensitive to JSON key order — the one
//!   order-insensitivity the protocol specs — and stable through a
//!   serialize/parse round trip of the wire format.
//!
//! Everything is seeded (the repo's standard SplitMix64 recurrence), so
//! a failure always reproduces.

use hierbus::campaign::{Fingerprint, Json, Matrix};
use hierbus::serve::ScenarioSpec;
use hierbus_ec::{ArbitrationPolicy, BurstLen, DmaParams, MixParams, WaitProfile};

/// SplitMix64 — the repo's standard dependency-free deterministic rng.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A random field: 0..=6 chars from a pool that includes the empty
/// string, separator-looking characters and multi-byte UTF-8, so
/// boundary bugs have something to collide with.
fn random_field(s: &mut u64) -> String {
    const POOL: &[char] = &['a', 'b', '/', '=', ';', '@', ' ', 'ä', '\u{10348}', '0'];
    let len = (splitmix(s) % 7) as usize;
    (0..len)
        .map(|_| POOL[(splitmix(s) % POOL.len() as u64) as usize])
        .collect()
}

fn random_fields(s: &mut u64) -> Vec<String> {
    let n = 1 + (splitmix(s) % 6) as usize;
    (0..n).map(|_| random_field(s)).collect()
}

fn fp_of(fields: &[String]) -> String {
    let mut fp = Fingerprint::new();
    for f in fields {
        fp.eat(f);
    }
    fp.finish()
}

/// Canonical injective rendering of a field sequence, for deduping
/// generated cases (0xff is the hasher's terminator and can never
/// appear inside a `&str`, so it is a safe separator here too).
fn repr(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| format!("{}\u{fff9}", f))
        .collect::<String>()
}

#[test]
fn distinct_field_sequences_never_collide() {
    let mut s = 0x00D5EED;
    let mut seen: Vec<(String, String)> = Vec::new();
    for _ in 0..4000 {
        let fields = random_fields(&mut s);
        seen.push((repr(&fields), fp_of(&fields)));
    }
    seen.sort();
    seen.dedup_by(|a, b| a.0 == b.0);
    let mut by_fp: Vec<(&str, &str)> = seen.iter().map(|(r, f)| (f.as_str(), r.as_str())).collect();
    by_fp.sort();
    for w in by_fp.windows(2) {
        assert_ne!(
            w[0].0, w[1].0,
            "fingerprint collision between field sequences {:?} and {:?}",
            w[0].1, w[1].1
        );
    }
}

#[test]
fn random_perturbations_change_the_fingerprint() {
    let mut s = 0xA11CE;
    for case in 0..500u32 {
        let fields = random_fields(&mut s);
        let base = fp_of(&fields);
        let mut perturbed: Vec<Vec<String>> = Vec::new();
        // Drop one field.
        let mut v = fields.clone();
        v.remove((splitmix(&mut s) % fields.len() as u64) as usize);
        perturbed.push(v);
        // Duplicate one field.
        let mut v = fields.clone();
        let i = (splitmix(&mut s) % fields.len() as u64) as usize;
        v.insert(i, fields[i].clone());
        perturbed.push(v);
        // Append one random character to one field.
        let mut v = fields.clone();
        let i = (splitmix(&mut s) % fields.len() as u64) as usize;
        v[i].push('q');
        perturbed.push(v);
        // Merge two adjacent fields (boundary removal).
        if fields.len() >= 2 {
            let mut v = fields.clone();
            let merged = format!("{}{}", v[0], v[1]);
            v.splice(0..2, [merged]);
            perturbed.push(v);
        }
        // Shift the boundary: move a field's last char into the next.
        if fields.len() >= 2 && !fields[0].is_empty() {
            let mut v = fields.clone();
            let c = v[0].pop().unwrap();
            v[1].insert(0, c);
            perturbed.push(v);
        }
        // Trailing empty field.
        let mut v = fields.clone();
        v.push(String::new());
        perturbed.push(v);
        for (pi, p) in perturbed.iter().enumerate() {
            if repr(p) == repr(&fields) {
                continue; // the perturbation happened to be an identity
            }
            assert_ne!(
                fp_of(p),
                base,
                "case {case} perturbation {pi}: {fields:?} vs {p:?}"
            );
        }
    }
}

#[test]
fn field_order_is_part_of_the_identity() {
    // Raw field sequences are order-SENSITIVE by spec: the manifest
    // matrix fingerprint must change when axes are reordered.
    let a = Fingerprint::new().field("alpha").field("beta").finish();
    let b = Fingerprint::new().field("beta").field("alpha").finish();
    assert_ne!(a, b);
    let m = Matrix::new().axis("x", ["1", "2"]).axis("y", ["3"]);
    let swapped = Matrix::new().axis("y", ["3"]).axis("x", ["1", "2"]);
    assert_ne!(m.fingerprint(), swapped.fingerprint());
}

#[test]
fn f64_absorption_is_bit_exact() {
    let mut pos = Fingerprint::new();
    pos.eat_f64(0.0);
    let mut neg = Fingerprint::new();
    neg.eat_f64(-0.0);
    assert_ne!(pos.finish(), neg.finish());
    // Random values: flipping any single mantissa bit changes the
    // fingerprint, and equal bits give equal fingerprints.
    let mut s = 0xF64;
    for _ in 0..200 {
        let bits = splitmix(&mut s);
        let v = f64::from_bits(bits);
        let one = |x: f64| {
            let mut fp = Fingerprint::new();
            fp.eat_f64(x);
            fp.finish()
        };
        assert_eq!(one(v), one(f64::from_bits(bits)));
        let flipped = f64::from_bits(bits ^ (1 << (splitmix(&mut s) % 63)));
        if flipped.to_bits() != bits {
            assert_ne!(one(v), one(flipped), "bits {bits:#x}");
        }
    }
}

/// Random valid serve specs across all three kinds. Seeds stay below
/// 2^52: the wire format carries numbers as f64, so only seeds in the
/// exactly-representable integer range survive a round trip (the
/// protocol's documented numeric model, not a fingerprint property).
fn random_spec(s: &mut u64) -> ScenarioSpec {
    match splitmix(s) % 3 {
        0 => ScenarioSpec::Named {
            name: format!("scenario_{}", splitmix(s) % 8),
        },
        1 => ScenarioSpec::Mix {
            seed: splitmix(s) >> 12,
            params: MixParams {
                count: 1 + (splitmix(s) % 500) as usize,
                read_pct: (splitmix(s) % 101) as u32,
                burst_pct: (splitmix(s) % 101) as u32,
                max_idle: (splitmix(s) % 5) as u32,
                ..MixParams::default()
            },
            waits: if splitmix(s).is_multiple_of(2) {
                None
            } else {
                Some(WaitProfile::new(
                    (splitmix(s) % 4) as u32,
                    (splitmix(s) % 4) as u32,
                    (splitmix(s) % 4) as u32,
                ))
            },
        },
        _ => ScenarioSpec::Multi {
            seed: splitmix(s) >> 12,
            policy: if splitmix(s).is_multiple_of(2) {
                ArbitrationPolicy::FixedPriority
            } else {
                ArbitrationPolicy::RoundRobin
            },
            cpu_count: 1 + (splitmix(s) % 300) as usize,
            dma: DmaParams {
                descriptors: 1 + (splitmix(s) % 40) as usize,
                burst: BurstLen::ALL[(splitmix(s) % 4) as usize],
                read_pct: (splitmix(s) % 101) as u32,
                max_gap: (splitmix(s) % 6) as u32,
                ..DmaParams::default()
            },
        },
    }
}

#[test]
fn spec_fingerprints_round_trip_through_the_wire_format() {
    let db = "0123456789abcdef";
    let mut s = 0x51C;
    for case in 0..300u32 {
        let spec = random_spec(&mut s);
        let line = spec.to_json().to_string_compact();
        let parsed = ScenarioSpec::from_json(&Json::parse(&line).expect("wire JSON parses"))
            .expect("wire JSON is a valid spec");
        assert_eq!(parsed, spec, "case {case}");
        assert_eq!(parsed.canonical(), spec.canonical(), "case {case}");
        assert_eq!(
            parsed.fingerprint(db),
            spec.fingerprint(db),
            "case {case}: {line}"
        );
    }
}

#[test]
fn spec_fingerprints_are_insensitive_to_json_key_order() {
    // The one order-insensitivity the protocol specs: a request object
    // means the same simulation whatever order the client writes its
    // keys in, because the fingerprint hashes the canonical form.
    let db = "0123456789abcdef";
    let mut s = 0x0DD5;
    for case in 0..200u32 {
        let spec = random_spec(&mut s);
        let Json::Obj(fields) = spec.to_json() else {
            panic!("specs serialize to objects")
        };
        let mut rotated = fields.clone();
        let by = (1 + (splitmix(&mut s) as usize) % rotated.len().max(2)) % rotated.len();
        rotated.rotate_left(by);
        let reparsed = ScenarioSpec::from_json(&Json::Obj(rotated)).expect("rotation keeps keys");
        assert_eq!(
            reparsed.fingerprint(db),
            spec.fingerprint(db),
            "case {case}: key order changed the fingerprint"
        );
    }
}

#[test]
fn distinct_specs_never_collide() {
    let db = "0123456789abcdef";
    let mut s = 0xC0111DE;
    let mut seen: Vec<(String, String)> = Vec::new();
    for _ in 0..2000 {
        let spec = random_spec(&mut s);
        seen.push((spec.canonical(), spec.fingerprint(db)));
    }
    seen.sort();
    seen.dedup_by(|a, b| a.0 == b.0);
    let mut by_fp: Vec<(&str, &str)> = seen.iter().map(|(c, f)| (f.as_str(), c.as_str())).collect();
    by_fp.sort();
    for w in by_fp.windows(2) {
        assert_ne!(
            w[0].0, w[1].0,
            "spec fingerprint collision: {:?} vs {:?}",
            w[0].1, w[1].1
        );
    }
}
