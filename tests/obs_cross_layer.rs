//! Cross-layer observability: the span stream every model layer emits
//! must describe the *same* protocol activity. For each scenario of the
//! §4.1 verification suite the cycle-true reference and both TLM layers
//! must produce identical span counts, per-phase and per-access-class,
//! with no span left open. A golden file pins the Perfetto exporter's
//! byte-exact output for a scripted three-transaction scenario.
//!
//! Regenerate the golden after an intentional format change with
//! `BLESS=1 cargo test --test obs_cross_layer`.

use hierbus::core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus::ec::sequences::{self, SCENARIO_BASE};
use hierbus::ec::{
    BurstLen, FaultKind, FaultPlan, MasterOp, OpFault, RetryPolicy, Scenario, WaitProfile,
};
use hierbus::harness::{scenario_slave, MAX_CYCLES};
use hierbus::obs::{Phase, TraceCollector};
use hierbus::rtl::{GlitchConfig, PowerConfig, RtlSystem, SimpleMem};

fn rtl_spans(scenario: &Scenario) -> TraceCollector {
    let mem = SimpleMem::new(scenario_slave(scenario));
    let mut rtl = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        GlitchConfig::default(),
    );
    rtl.enable_obs();
    rtl.run(MAX_CYCLES);
    rtl.obs().clone()
}

fn tlm1_spans(scenario: &Scenario) -> TraceCollector {
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    sys.run(MAX_CYCLES, |_| {});
    sys.bus().obs().clone()
}

fn tlm2_spans(scenario: &Scenario) -> TraceCollector {
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    sys.run(MAX_CYCLES, |_| {});
    sys.bus().obs().clone()
}

/// Spans per protocol phase, in `Phase::ALL` order.
fn phase_counts(c: &TraceCollector) -> Vec<usize> {
    Phase::ALL
        .iter()
        .map(|p| c.spans().iter().filter(|s| s.phase == *p).count())
        .collect()
}

#[test]
fn span_counts_agree_across_layers_on_verification_suite() {
    for scenario in sequences::all_scenarios() {
        let layers = [
            rtl_spans(&scenario),
            tlm1_spans(&scenario),
            tlm2_spans(&scenario),
        ];
        for c in &layers {
            assert_eq!(
                c.open_count(),
                0,
                "{}: layer {} left spans open",
                scenario.name,
                c.layer()
            );
            // Every suite transaction succeeds: request + address + one
            // data phase each.
            assert_eq!(
                c.span_count(),
                3 * scenario.len(),
                "{}: layer {} span count",
                scenario.name,
                c.layer()
            );
            assert!(
                c.spans().iter().all(|s| !s.error),
                "{}: layer {} reported a bus error",
                scenario.name,
                c.layer()
            );
        }
        let reference = phase_counts(&layers[0]);
        for c in &layers[1..] {
            assert_eq!(
                phase_counts(c),
                reference,
                "{}: per-phase span counts diverge between rtl and {}",
                scenario.name,
                c.layer()
            );
        }
    }
}

#[test]
fn trace_ids_pair_up_across_layers() {
    let scenario = sequences::write_after_read();
    let l1 = tlm1_spans(&scenario);
    let l2 = tlm2_spans(&scenario);
    let ids = |c: &TraceCollector| {
        let mut v: Vec<u64> = c.spans().iter().map(|s| s.trace_id).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    assert_eq!(ids(&l1), ids(&l2));
    assert_eq!(ids(&l1).len(), scenario.len());
}

fn three_txn_scenario() -> Scenario {
    Scenario {
        name: "three_txn",
        ops: vec![
            MasterOp::read(SCENARIO_BASE),
            MasterOp::write(SCENARIO_BASE + 4, 0xDEAD_BEEF),
            MasterOp::burst_read(SCENARIO_BASE, BurstLen::B4),
        ]
        .into(),
        waits: WaitProfile::ZERO,
    }
}

#[test]
fn perfetto_export_matches_golden_file() {
    let scenario = three_txn_scenario();
    let collectors = [
        rtl_spans(&scenario),
        tlm1_spans(&scenario),
        tlm2_spans(&scenario),
    ];
    let json = hierbus::obs::perfetto::export(&collectors);

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/three_txn.trace.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).expect("bless golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        json, golden,
        "Perfetto export drifted from the golden file; if the change is \
         intentional, regenerate with BLESS=1 cargo test --test obs_cross_layer"
    );
}

fn rtl_fault_spans(scenario: &Scenario, plan: &FaultPlan, policy: RetryPolicy) -> TraceCollector {
    let mem = SimpleMem::new(scenario_slave(scenario));
    let mut rtl = RtlSystem::new(
        scenario.ops.clone(),
        vec![Box::new(mem)],
        PowerConfig::default(),
        GlitchConfig::default(),
    )
    .with_faults(plan.clone(), policy);
    rtl.enable_obs();
    rtl.run(MAX_CYCLES);
    rtl.obs().clone()
}

fn tlm1_fault_spans(scenario: &Scenario, plan: &FaultPlan, policy: RetryPolicy) -> TraceCollector {
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone()).with_faults(plan.clone(), policy);
    sys.run(MAX_CYCLES, |_| {});
    sys.bus().obs().clone()
}

fn tlm2_fault_spans(scenario: &Scenario, plan: &FaultPlan, policy: RetryPolicy) -> TraceCollector {
    let mem = MemSlave::new(scenario_slave(scenario));
    let mut bus = Tlm2Bus::new(vec![Box::new(mem)]);
    bus.enable_obs();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone()).with_faults(plan.clone(), policy);
    sys.run(MAX_CYCLES, |_| {});
    sys.bus().obs().clone()
}

/// The golden fault scenario: the write answers its first attempt with
/// a slave error and the master retries it once, successfully. The
/// trace therefore carries an errored span set, the reissued spans, and
/// the `fault.injected` / `fault.retried` counter tracks.
#[test]
fn perfetto_export_of_faulted_run_matches_golden_file() {
    let scenario = three_txn_scenario();
    let plan = FaultPlan::new().with_fault(1, OpFault::once(FaultKind::SlaveError));
    let policy = RetryPolicy::retries(3);
    let collectors = [
        rtl_fault_spans(&scenario, &plan, policy),
        tlm1_fault_spans(&scenario, &plan, policy),
        tlm2_fault_spans(&scenario, &plan, policy),
    ];
    for c in &collectors {
        assert_eq!(c.open_count(), 0, "layer {} left spans open", c.layer());
        assert!(
            c.spans().iter().any(|s| s.error),
            "layer {} shows no errored span",
            c.layer()
        );
        let tracks: Vec<&str> = c.counters().iter().map(|t| t.name.as_str()).collect();
        assert!(tracks.contains(&"fault.injected"), "tracks: {tracks:?}");
        assert!(tracks.contains(&"fault.retried"), "tracks: {tracks:?}");
    }
    let json = hierbus::obs::perfetto::export(&collectors);

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fault_retry.trace.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).expect("bless golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        json, golden,
        "Perfetto export of the faulted run drifted from the golden file; \
         if the change is intentional, regenerate with \
         BLESS=1 cargo test --test obs_cross_layer"
    );
}
